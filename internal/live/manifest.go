package live

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/storage"
)

// ManifestFile is the name of the manifest inside a live index
// directory. The manifest is the root of truth: a segment directory not
// listed here does not exist as far as the index is concerned (it is a
// leftover of a crash between a commit and a deferred deletion) and is
// garbage-collected on Open.
const ManifestFile = "live.json"

// manifest is the on-disk registry of active segments. It is rewritten
// atomically (temp file + rename) on every seal and merge commit.
type manifest struct {
	Version    int               `json:"version"`
	Generation uint64            `json:"generation"`
	NextSeq    uint64            `json:"next_seq"`
	Segments   []manifestSegment `json:"segments"`
}

// manifestSegment records one active segment. Base/Docs are duplicated
// from the segment's own stats so Open can validate the chain partitions
// the document space before serving it. Snap is the ordinal of the
// persisted lexicon snapshot; the max-snap segment restores the master
// lexicon on reopen.
//
// Tomb is the version of the segment's alive-bitmap sidecar
// (alive-%06d.bm): 0 means no bitmap — every stored document alive —
// and a tombstone is committed exactly when the manifest referencing
// its bitmap version lands, the same swap-is-commit rule segments
// follow. Alive duplicates the bitmap's population count so a torn or
// stale sidecar is detected on reopen.
type manifestSegment struct {
	Name  string `json:"name"`
	Seq   uint64 `json:"seq"`
	Snap  uint64 `json:"snap"`
	Base  uint32 `json:"base"`
	Docs  int    `json:"docs"`
	Alive int    `json:"alive"`
	Tomb  uint64 `json:"tomb,omitempty"`
}

// writeManifest atomically and durably replaces the manifest under dir
// (fsync'd file + directory: the swap is every commit's durability
// point — a Delete that returned must survive power loss).
func writeManifest(dir string, m manifest) error {
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("live: encode manifest: %w", err)
	}
	if err := storage.AtomicWriteFile(filepath.Join(dir, ManifestFile), raw); err != nil {
		return fmt.Errorf("live: write manifest: %w", err)
	}
	return nil
}

// readManifest loads and validates the manifest under dir. A missing
// manifest returns (nil, nil): a fresh directory.
func readManifest(dir string) (*manifest, error) {
	raw, err := os.ReadFile(filepath.Join(dir, ManifestFile))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("live: read manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("live: manifest %s is not valid JSON (corrupt?): %w",
			filepath.Join(dir, ManifestFile), err)
	}
	if err := m.validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// validate checks (and normalizes) the manifest's internal consistency:
// version 1, sequence numbers below NextSeq, and a segment chain that
// partitions [0, totalDocs) in base order. It is shared by readManifest
// and the follower-side ApplyManifest, so a manifest received over the
// wire meets exactly the bar a local one does.
func (m *manifest) validate() error {
	if m.Version != 1 {
		return fmt.Errorf("live: manifest version %d, this build reads version 1", m.Version)
	}
	// The chain must partition [0, totalDocs) in base order.
	sort.Slice(m.Segments, func(a, b int) bool { return m.Segments[a].Base < m.Segments[b].Base })
	var next uint32
	for i, s := range m.Segments {
		if s.Base != next {
			return fmt.Errorf("live: manifest segment %d (%s) starts at doc %d, expected %d: corrupt manifest",
				i, s.Name, s.Base, next)
		}
		if s.Docs <= 0 {
			return fmt.Errorf("live: manifest segment %s holds %d documents: corrupt manifest", s.Name, s.Docs)
		}
		if s.Seq >= m.NextSeq {
			return fmt.Errorf("live: manifest segment %s has seq %d >= next_seq %d: corrupt manifest",
				s.Name, s.Seq, m.NextSeq)
		}
		if s.Tomb == 0 {
			// No bitmap: every stored document is alive. Manifests written
			// before the delete path record no Alive field; normalize.
			m.Segments[i].Alive = s.Docs
		} else if s.Alive < 0 || s.Alive > s.Docs {
			return fmt.Errorf("live: manifest segment %s claims %d alive of %d documents: corrupt manifest",
				s.Name, s.Alive, s.Docs)
		}
		next += uint32(s.Docs)
	}
	return nil
}

// gcStale removes every seg-* directory under dir that the manifest
// does not list — leftovers of a crash between a commit and the
// deferred deletion of merged-away inputs, or (in follower mode)
// pulled segments whose manifest never committed — plus pull-* staging
// directories and stray top-level temp files (*.tmp / *.partial) a
// mid-pull or mid-write crash abandoned, and, inside listed segment
// directories, every alive-bitmap version file the manifest does not
// reference (a tombstone written but never committed, or superseded and
// not yet deleted). It returns the removed names.
func gcStale(dir string, m *manifest) ([]string, error) {
	known := make(map[string]uint64, len(m.Segments))
	for _, s := range m.Segments {
		known[s.Name] = s.Tomb
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("live: scan %s: %w", dir, err)
	}
	var removed []string
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "pull-") {
			// Replication staging: contents become real only by rename to
			// a seg-* name, so anything still here is an abandoned pull.
			if err := os.RemoveAll(filepath.Join(dir, e.Name())); err != nil {
				return removed, fmt.Errorf("live: gc stale pull staging %s: %w", e.Name(), err)
			}
			removed = append(removed, e.Name())
			continue
		}
		if !e.IsDir() && (strings.HasSuffix(e.Name(), ".tmp") || strings.HasSuffix(e.Name(), ".partial")) {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
				return removed, fmt.Errorf("live: gc stale temp file %s: %w", e.Name(), err)
			}
			removed = append(removed, e.Name())
			continue
		}
		if !e.IsDir() || !strings.HasPrefix(e.Name(), "seg-") {
			continue
		}
		tomb, ok := known[e.Name()]
		if !ok {
			if err := os.RemoveAll(filepath.Join(dir, e.Name())); err != nil {
				return removed, fmt.Errorf("live: gc stale segment %s: %w", e.Name(), err)
			}
			removed = append(removed, e.Name())
			continue
		}
		segDir := filepath.Join(dir, e.Name())
		files, err := os.ReadDir(segDir)
		if err != nil {
			return removed, fmt.Errorf("live: scan %s: %w", segDir, err)
		}
		for _, f := range files {
			name := f.Name()
			if f.IsDir() || !strings.HasPrefix(name, "alive-") {
				continue
			}
			if tomb != 0 && name == aliveName(tomb) {
				continue
			}
			if err := os.Remove(filepath.Join(segDir, name)); err != nil {
				return removed, fmt.Errorf("live: gc stale bitmap %s/%s: %w", e.Name(), name, err)
			}
			removed = append(removed, e.Name()+"/"+name)
		}
	}
	return removed, nil
}
