package live

import (
	"fmt"
	"path/filepath"

	"repro/internal/index"
	"repro/internal/lexicon"
	"repro/internal/postings"
)

// This file is the replication seam of the live index: the exported
// manifest view a leader publishes, and the follower-side install path
// that turns a directory of pulled segments into a searchable
// generation through the exact commit protocol the writer itself uses
// (validate → atomic manifest swap → generation install → deferred
// release of dropped segments).
//
// A follower (Config.Follower) is a read-only writer: Add, Flush,
// Delete, Update, and MergeAll fail with ErrReadOnly, no background
// seal or merge runs, and the only state transition is ApplyManifest —
// which adopts the leader's generation ordinals wholesale, so "is the
// follower caught up" is a single integer comparison between two
// /metrics scrapes.

// ErrReadOnly is returned by mutating operations on a follower-mode
// writer. Followers change state only through ApplyManifest.
var ErrReadOnly = fmt.Errorf("live: writer is in follower mode (read-only)")

// SegmentDirName formats the directory name of segment sequence seq —
// the name replication peers address segments by.
func SegmentDirName(seq uint64) string { return segmentName(seq) }

// AliveFileName formats the alive-bitmap sidecar file name for bitmap
// version ver (ver > 0; version 0 means no bitmap exists).
func AliveFileName(ver uint64) string { return aliveName(ver) }

// SegmentInfo describes one active segment of a Manifest. It mirrors
// the on-disk manifest entry: Base/Docs pin the segment's global-id
// span, Snap is its persisted lexicon-snapshot ordinal, and Tomb/Alive
// name and checksum the alive-bitmap version in force.
type SegmentInfo struct {
	Name  string `json:"name"`
	Seq   uint64 `json:"seq"`
	Snap  uint64 `json:"snap"`
	Base  uint32 `json:"base"`
	Docs  int    `json:"docs"`
	Alive int    `json:"alive"`
	Tomb  uint64 `json:"tomb,omitempty"`
}

// Manifest is the exported view of a live index's committed state: the
// replication ordinal (Generation — every commit increments it) and the
// active segment chain. Equal generations imply byte-identical chains,
// which is what lets a follower decide staleness by comparing one
// number.
type Manifest struct {
	Generation uint64        `json:"generation"`
	NextSeq    uint64        `json:"next_seq"`
	Segments   []SegmentInfo `json:"segments"`
}

// Manifest returns the currently committed manifest.
func (w *Writer) Manifest() Manifest {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.manifestLocked()
}

func (w *Writer) manifestLocked() Manifest {
	m := Manifest{Generation: w.genID, NextSeq: w.seq}
	for _, s := range w.segs {
		m.Segments = append(m.Segments, SegmentInfo{
			Name: s.name, Seq: s.seq, Snap: s.snap, Base: s.base, Docs: s.docs,
			Alive: s.aliveDocs, Tomb: s.aliveVer,
		})
	}
	return m
}

// AcquireManifest returns the committed manifest together with a
// snapshot pinning exactly that state, taken in one critical section.
// A leader serving segment files to followers must hold such a snapshot
// while reading: it keeps every listed segment's files on disk even if
// a merge retires them mid-transfer. Close the snapshot when done.
func (w *Writer) AcquireManifest() (Manifest, *Snapshot, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed || w.cur == nil {
		return Manifest{}, nil, ErrClosed
	}
	w.cur.refs.Add(1)
	snap := &Snapshot{g: w.cur, workers: w.cfg.Workers, fc: &w.fc}
	return w.manifestLocked(), snap, nil
}

// ReadOnly reports whether the writer is in follower mode.
func (w *Writer) ReadOnly() bool { return w.cfg.Follower }

// Dir returns the index directory the writer serves.
func (w *Writer) Dir() string { return w.cfg.Dir }

// ApplyManifest installs manifest m on a follower-mode writer. The
// caller (the replication puller) must already have committed every
// segment directory and alive-bitmap version m references under Dir —
// fully written, fsync'd, and renamed into place. ApplyManifest then
// re-runs the writer's own open protocol over the new chain: it opens
// the segments it does not yet serve (page checksums primed, section
// CRCs verified), validates the chain partitions the document space,
// rebuilds the tombstone ledger, restores the lexicon from the
// max-snapshot segment, writes the local manifest atomically, and swaps
// in a new generation. Segments no longer referenced are released and
// their directories deleted once the last in-flight search drains —
// the same deferred retirement merges use.
//
// Manifests must arrive in increasing Generation order; applying a
// stale or repeated one fails without side effects. On any validation
// or open failure the current generation keeps serving untouched.
func (w *Writer) ApplyManifest(m Manifest) error {
	if !w.cfg.Follower {
		return fmt.Errorf("live: ApplyManifest on a leader-mode writer (set Config.Follower)")
	}
	// Appliers serialize: the heavy validation work happens outside the
	// writer mutex, against a chain only ApplyManifest itself mutates.
	w.applyMu.Lock()
	defer w.applyMu.Unlock()

	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrClosed
	}
	if m.Generation <= w.genID {
		cur := w.genID
		w.mu.Unlock()
		return fmt.Errorf("live: manifest generation %d is not newer than installed generation %d", m.Generation, cur)
	}
	have := make(map[string]*segment, len(w.segs))
	for _, s := range w.segs {
		have[s.name] = s
	}
	w.mu.Unlock()

	im := toInternalManifest(m)
	if err := im.validate(); err != nil {
		return err
	}

	// Stage 1 (no writer lock, no visible effects): open new segments,
	// load new bitmap versions, rebuild the ledger and lexicon.
	type bitmapSwap struct {
		seg  *segment
		bm   *postings.AliveBitmap
		tomb uint64
	}
	var (
		opened []*segment
		swaps  []bitmapSwap
	)
	fail := func(err error) error {
		for _, s := range opened {
			s.release()
		}
		return err
	}
	dead := make(map[lexicon.TermID]lexicon.Stats)
	var deadDocs int64
	chain := make([]*segment, 0, len(m.Segments))
	var newest *segment
	var total uint32
	for _, info := range m.Segments {
		s := have[info.Name]
		alive := (*postings.AliveBitmap)(nil)
		if s != nil {
			// Reused segment: sequence numbers are unique forever, so the
			// immutable fields must agree — disagreement means the leader
			// and follower hold different files under one name.
			if s.seq != info.Seq || s.snap != info.Snap || s.base != info.Base || s.docs != info.Docs {
				return fail(fmt.Errorf("live: segment %s diverges from the installed copy (seq/snap/base/docs mismatch)", info.Name))
			}
			alive = s.alive
			if s.aliveVer != info.Tomb {
				if info.Tomb == 0 {
					return fail(fmt.Errorf("live: segment %s: manifest drops bitmap version %d (tombstones cannot be undone)", info.Name, s.aliveVer))
				}
				bm, err := index.ReadAlive(filepath.Join(w.cfg.Dir, info.Name, aliveName(info.Tomb)), s.docs)
				if err != nil {
					return fail(fmt.Errorf("live: segment %s: %w", info.Name, err))
				}
				swaps = append(swaps, bitmapSwap{seg: s, bm: bm, tomb: info.Tomb})
				alive = bm
			}
		} else {
			seg, err := openSegment(w.cfg, info.Name, info.Seq, info.Snap, info.Base, info.Tomb, w.blockCache)
			if err != nil {
				return fail(err)
			}
			opened = append(opened, seg)
			if seg.docs != info.Docs {
				return fail(fmt.Errorf("live: segment %s holds %d documents, manifest says %d (corrupt?)", info.Name, seg.docs, info.Docs))
			}
			s, alive = seg, seg.alive
		}
		if got := aliveCount(alive, s.docs); got != info.Alive {
			return fail(fmt.Errorf("live: segment %s bitmap leaves %d documents alive, manifest says %d (corrupt?)", info.Name, got, info.Alive))
		}
		n, err := foldDeadStats(s, alive, dead)
		if err != nil {
			return fail(fmt.Errorf("live: segment %s: %w", info.Name, err))
		}
		deadDocs += n
		chain = append(chain, s)
		total += uint32(s.docs)
		if newest == nil || s.snap > newest.snap {
			newest = s
		}
	}
	var lex *lexicon.Lexicon
	var snapOrd uint64
	if newest != nil {
		lex = newest.idx.Lex.Clone()
		snapOrd = newest.snap
	} else {
		lex = lexicon.New()
	}
	tight, err := tightenLexicon(lex, dead)
	if err != nil {
		return fail(err)
	}

	// Stage 2 (writer lock): commit. The local manifest swap is the
	// durability point; the generation install publishes it to searches.
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return fail(ErrClosed)
	}
	for _, sw := range swaps {
		sw.seg.alive = sw.bm
		sw.seg.aliveVer = sw.tomb
		sw.seg.recountAlive()
	}
	inChain := make(map[string]bool, len(chain))
	for _, s := range chain {
		inChain[s.name] = true
	}
	var dropped []*segment
	for _, s := range w.segs {
		if !inChain[s.name] {
			s.dead.Store(true)
			dropped = append(dropped, s)
		}
	}
	w.segs = chain
	// Follower-mode lexicon invariants: with no buffer and no write
	// path, the master, the sealed snapshot, and the persisted newest
	// snapshot coincide — one clone serves all three roles (they are
	// immutable from here on).
	w.lex = lex
	w.sealedSnap = lex
	w.sealedSnapID = snapOrd
	w.snapID = snapOrd
	w.deadStats = dead
	w.docsDeleted = deadDocs
	w.tight = tight
	w.base = total
	w.seq = m.NextSeq
	w.genID = m.Generation
	if err := writeManifest(w.cfg.Dir, im); err != nil {
		// The chain swap above is in-memory only and the new segments are
		// all valid; serving them unpersisted would still be correct, but
		// failing loudly keeps "installed implies durable" true. Poison:
		// the in-memory and on-disk states have diverged.
		w.failed = err
		w.mu.Unlock()
		return err
	}
	if err := w.installLocked(); err != nil {
		w.failed = err
		w.mu.Unlock()
		return err
	}
	w.mu.Unlock()
	for _, s := range dropped {
		s.release() // the old chain's reference; the directory goes with the last search
	}
	return nil
}

// toInternalManifest converts the exported manifest to the on-disk
// form.
func toInternalManifest(m Manifest) manifest {
	im := manifest{Version: 1, Generation: m.Generation, NextSeq: m.NextSeq}
	for _, s := range m.Segments {
		im.Segments = append(im.Segments, manifestSegment{
			Name: s.Name, Seq: s.Seq, Snap: s.Snap, Base: s.Base, Docs: s.Docs,
			Alive: s.Alive, Tomb: s.Tomb,
		})
	}
	return im
}

// aliveCount counts survivors under bm over a docs-wide id space (nil
// bitmap: everyone).
func aliveCount(bm *postings.AliveBitmap, docs int) int {
	if bm == nil {
		return docs
	}
	return bm.AliveCount()
}

// foldDeadStats folds segment s's dead documents' term statistics —
// under the given bitmap, which may be a newer version than the one the
// segment currently serves — into the ledger, returning how many dead
// documents it saw. Documents deleted while buffered sealed as empty
// forward entries and contribute nothing.
func foldDeadStats(s *segment, alive *postings.AliveBitmap, dead map[lexicon.TermID]lexicon.Stats) (int64, error) {
	if alive == nil {
		return 0, nil
	}
	var n int64
	for id := 0; id < s.docs; id++ {
		if alive.Alive(uint32(id)) {
			continue
		}
		terms, err := s.fwd.terms(uint32(id))
		if err != nil {
			return n, err
		}
		for _, tf := range terms {
			dead[tf.Term] = addStat(dead[tf.Term], 1, int64(tf.TF))
		}
		n++
	}
	return n, nil
}
