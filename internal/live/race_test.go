package live

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestConcurrentInsertMergeSearch is the live layer's -race stress: two
// inserters, four searchers, the background merger, and the timed
// flusher all running against one Writer. Every search must come back
// exact and internally consistent while seals, merges, and hot swaps
// commit underneath it.
func TestConcurrentInsertMergeSearch(t *testing.T) {
	col := genCollection(t, 1200, 51)
	queries := genQueries(t, col, 52)
	w, err := Open(Config{
		Dir:             t.TempDir(),
		SealDocs:        60,
		MergeFanIn:      3,
		BackgroundMerge: true,
		FlushEvery:      2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	const inserters = 2
	var wg sync.WaitGroup
	var searches atomic.Int64
	done := make(chan struct{})

	// Inserters split the corpus; interleaved arrival means global ids
	// differ from col ids — irrelevant here, the stress is about safety
	// and per-query consistency, not equivalence (live_test covers that).
	for g := 0; g < inserters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(col.Docs); i += inserters {
				if _, err := w.Add(docTerms(col, &col.Docs[i])); err != nil {
					t.Errorf("add: %v", err)
					return
				}
			}
		}(g)
	}

	var searchWG sync.WaitGroup
	for g := 0; g < 4; g++ {
		searchWG.Add(1)
		go func(g int) {
			defer searchWG.Done()
			s := w.Searcher()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				q := queries[(i+g)%len(queries)]
				res, err := s.Search(queryNames(col, q), 10)
				if err != nil {
					t.Errorf("search: %v", err)
					return
				}
				if !res.Exact {
					t.Errorf("inexact live result at generation %d", res.Generation)
					return
				}
				// Scores must be sorted and ids unique — a torn snapshot
				// would violate one of the two.
				seen := map[uint32]bool{}
				for j, ds := range res.Top {
					if seen[ds.DocID] {
						t.Errorf("duplicate doc %d in merged top", ds.DocID)
						return
					}
					seen[ds.DocID] = true
					if j > 0 && res.Top[j-1].Score < ds.Score {
						t.Errorf("unsorted merged top at %d", j)
						return
					}
				}
				searches.Add(1)
			}
		}(g)
	}

	wg.Wait()
	flushErr := w.Flush()
	w.WaitMergeIdle()
	// Stop the searchers before any Fatal below, so no goroutine logs
	// into a finished test.
	close(done)
	searchWG.Wait()
	if flushErr != nil {
		t.Fatal(flushErr)
	}
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}

	st := w.Stats()
	if st.DocsAdded != int64(len(col.Docs)) {
		t.Fatalf("added %d docs, want %d", st.DocsAdded, len(col.Docs))
	}
	if st.DocsSealed != int64(len(col.Docs)) {
		t.Fatalf("sealed %d docs, want %d", st.DocsSealed, len(col.Docs))
	}
	if st.Merges == 0 {
		t.Fatal("stress never exercised a background merge")
	}
	if searches.Load() == 0 {
		t.Fatal("stress never completed a search")
	}

	// Final state answers like a one-shot index over the arrived order:
	// every document is present exactly once, so total hits over a
	// match-all style probe equal the corpus — checked cheaply via
	// NumDocs.
	snap, err := w.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	if snap.NumDocs() != len(col.Docs) {
		t.Fatalf("final snapshot holds %d docs, want %d", snap.NumDocs(), len(col.Docs))
	}
}

// TestSnapshotCloseVsSearch: Close on a shared snapshot must
// synchronize with concurrent Search — a search that started before
// the close keeps its segments alive (even merged-away ones mid-
// deletion), and one that starts after gets the closed-snapshot error,
// never a read failure.
func TestSnapshotCloseVsSearch(t *testing.T) {
	col := genCollection(t, 400, 91)
	queries := genQueries(t, col, 92)
	w, err := Open(Config{Dir: t.TempDir(), SealDocs: 50, MergeFanIn: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	streamInto(t, w, col)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	for round := 0; round < 20; round++ {
		snap, err := w.Acquire()
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 8; i++ {
					_, err := snap.Search(queryNames(col, queries[(g+i)%len(queries)]), 10)
					if err != nil && !strings.Contains(err.Error(), "closed snapshot") {
						t.Errorf("round %d: search failed with a non-closed error: %v", round, err)
						return
					}
				}
			}(g)
		}
		snap.Close() // races the searches above
		wg.Wait()
		// Merging between rounds makes the closed generation's segments
		// deletion candidates, so a lost race would surface as a read
		// from a deleted segment file.
		if err := w.MergeAll(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSnapshotSurvivesClose: a snapshot acquired before Close keeps
// serving (the refcount holds its segments open) and the writer rejects
// new work after Close.
func TestSnapshotSurvivesClose(t *testing.T) {
	col := genCollection(t, 120, 61)
	queries := genQueries(t, col, 62)
	w, err := Open(Config{Dir: t.TempDir(), SealDocs: 40})
	if err != nil {
		t.Fatal(err)
	}
	streamInto(t, w, col)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	snap, err := w.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	want, err := snap.Search(queryNames(col, queries[0]), 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := snap.Search(queryNames(col, queries[0]), 10)
	if err != nil {
		t.Fatal(err)
	}
	assertSameTop(t, "snapshot after close", got.Top, want.Top)
	snap.Close()

	if _, err := w.Add([]TermCount{{Term: "x", TF: 1}}); err != ErrClosed {
		t.Fatalf("Add after Close: %v, want ErrClosed", err)
	}
	if _, err := w.Acquire(); err != ErrClosed {
		t.Fatalf("Acquire after Close: %v, want ErrClosed", err)
	}
	if _, err := w.Searcher().Search([]string{"x"}, 1); err != ErrClosed {
		t.Fatalf("Search after Close: %v, want ErrClosed", err)
	}
}
