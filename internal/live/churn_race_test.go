package live

import (
	"errors"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/rank"
	"repro/internal/storage"
)

// churnRegistry is the stress test's shared view of the corpus: which
// live ids are alive, what content they carry, and which ids have had
// their deletion *committed* (Delete/Update returned). The visibility
// invariant leans on the commit order: a tombstone recorded here
// happened-before any snapshot acquired afterwards, so such a snapshot
// must never return the id.
type churnRegistry struct {
	mu      sync.Mutex
	st      *churnState
	deleted map[uint32]bool
}

func (r *churnRegistry) add(id uint32, doc int) {
	r.mu.Lock()
	r.st.add(id, doc)
	r.mu.Unlock()
}

// pick removes a random alive id for deletion, returning ok=false when
// too few remain.
func (r *churnRegistry) pick(rng *rand.Rand) (uint32, int, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.st.alive) < 20 {
		return 0, 0, false
	}
	id, doc := r.st.removeAt(rng.Intn(len(r.st.alive)))
	return id, doc, true
}

// committed records that id's tombstone commit returned.
func (r *churnRegistry) committed(id uint32) {
	r.mu.Lock()
	r.deleted[id] = true
	r.mu.Unlock()
}

// deadSet snapshots the committed tombstones.
func (r *churnRegistry) deadSet() map[uint32]bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[uint32]bool, len(r.deleted))
	for id := range r.deleted {
		out[id] = true
	}
	return out
}

// TestConcurrentChurn is the delete path's -race stress: inserters,
// a deleter, an updater, searchers, the timed flusher, the background
// merger (purges included), and explicit MergeAll calls all hammer one
// Writer. Invariants checked while it runs: every search is exact and
// internally consistent, and no document whose deletion committed
// before the snapshot was acquired ever resurfaces (no resurrected
// doc). Afterwards the final state must be byte-identical to a one-shot
// build over the survivors — churn-proof end to end.
func TestConcurrentChurn(t *testing.T) {
	col := genCollection(t, 1500, 57)
	queries := genQueries(t, col, 58)
	w, err := Open(Config{
		Dir:             t.TempDir(),
		SealDocs:        80,
		MergeFanIn:      3,
		PurgeDeadFrac:   0.3,
		BackgroundMerge: true,
		FlushEvery:      2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	reg := &churnRegistry{st: newChurnState(), deleted: map[uint32]bool{}}
	done := make(chan struct{})
	var searches, churned atomic.Int64

	var writeWG sync.WaitGroup
	const inserters = 2
	for g := 0; g < inserters; g++ {
		writeWG.Add(1)
		go func(g int) {
			defer writeWG.Done()
			for i := g; i < len(col.Docs); i += inserters {
				id, err := w.Add(docTerms(col, &col.Docs[i]))
				if err != nil {
					t.Errorf("add: %v", err)
					return
				}
				reg.add(id, i)
			}
		}(g)
	}

	// One deleter and one updater; each owns the ids it picked, so a
	// double delete can only come from a bug, never from the test.
	writeWG.Add(2)
	go func() {
		defer writeWG.Done()
		rng := rand.New(rand.NewSource(571))
		for i := 0; i < 250; i++ {
			id, _, ok := reg.pick(rng)
			if !ok {
				time.Sleep(time.Millisecond)
				continue
			}
			if err := w.Delete(id); err != nil {
				t.Errorf("delete %d: %v", id, err)
				return
			}
			reg.committed(id)
			churned.Add(1)
		}
	}()
	go func() {
		defer writeWG.Done()
		rng := rand.New(rand.NewSource(572))
		for i := 0; i < 250; i++ {
			id, doc, ok := reg.pick(rng)
			if !ok {
				time.Sleep(time.Millisecond)
				continue
			}
			nid, err := w.Update(id, docTerms(col, &col.Docs[doc]))
			if err != nil {
				t.Errorf("update %d: %v", id, err)
				return
			}
			reg.committed(id)
			reg.add(nid, doc)
			churned.Add(1)
		}
	}()

	var searchWG sync.WaitGroup
	for g := 0; g < 4; g++ {
		searchWG.Add(1)
		go func(g int) {
			defer searchWG.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				// Read the committed tombstones *before* acquiring: every
				// one of them happened-before this snapshot.
				dead := reg.deadSet()
				snap, err := w.Acquire()
				if err != nil {
					t.Errorf("acquire: %v", err)
					return
				}
				q := queries[(i+g)%len(queries)]
				res, err := snap.Search(queryNames(col, q), 10)
				snap.Close()
				if err != nil {
					t.Errorf("search: %v", err)
					return
				}
				if !res.Exact {
					t.Errorf("inexact result at generation %d", res.Generation)
					return
				}
				seen := map[uint32]bool{}
				for j, ds := range res.Top {
					if dead[ds.DocID] {
						t.Errorf("resurrected doc %d: deletion committed before snapshot generation %d",
							ds.DocID, res.Generation)
						return
					}
					if seen[ds.DocID] {
						t.Errorf("duplicate doc %d in merged top", ds.DocID)
						return
					}
					seen[ds.DocID] = true
					if j > 0 && res.Top[j-1].Score < ds.Score {
						t.Errorf("unsorted merged top at %d", j)
						return
					}
				}
				searches.Add(1)
			}
		}(g)
	}

	// A competing foreground merger exercises MergeAll vs the background
	// goroutine (and deletion commits) on the mergeBusy latch.
	writeWG.Add(1)
	go func() {
		defer writeWG.Done()
		for i := 0; i < 10; i++ {
			if err := w.MergeAll(); err != nil && !errors.Is(err, ErrClosed) {
				t.Errorf("merge: %v", err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	writeWG.Wait()
	flushErr := w.Flush()
	w.WaitMergeIdle()
	close(done)
	searchWG.Wait()
	if flushErr != nil {
		t.Fatal(flushErr)
	}
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	if searches.Load() == 0 || churned.Load() == 0 {
		t.Fatalf("stress did no work: %d searches, %d churn ops", searches.Load(), churned.Load())
	}
	st := w.Stats()
	if st.Merges == 0 {
		t.Fatal("stress never exercised a merge")
	}
	if st.DocsAlive != int64(len(reg.st.alive)) {
		t.Fatalf("writer sees %d alive docs, registry %d", st.DocsAlive, len(reg.st.alive))
	}

	// Churn-proof finish: byte-identical to a one-shot build over the
	// survivors. Registration order raced the id assignment, so restore
	// arrival (id) order first — the order the baseline build assumes.
	sort.Slice(reg.st.alive, func(a, b int) bool { return reg.st.alive[a] < reg.st.alive[b] })
	sub, fromRef := survivorRef(t, col, reg.st)
	pool, err := storage.NewPool(storage.NewDisk(), 1<<15)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := index.Build(sub, pool)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := core.NewMaxScore(idx, rank.NewBM25())
	if err != nil {
		t.Fatal(err)
	}
	s := w.Searcher()
	for _, q := range queries {
		names := queryNames(col, q)
		res, err := s.Search(names, 10)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ms.Search(refQuery(sub.Lex, names), 10)
		if err != nil {
			t.Fatal(err)
		}
		assertSameTop(t, "post-stress vs survivor build", res.Top, mapRef(want, fromRef))
	}
}
