package live

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/postings"
	"repro/internal/rank"
	"repro/internal/storage"
)

// copyDir deep-copies a live directory — the "crash image" the recovery
// tests reopen.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() == lockFileName {
			continue
		}
		s, d := filepath.Join(src, e.Name()), filepath.Join(dst, e.Name())
		if e.IsDir() {
			copyDir(t, s, d)
			continue
		}
		data, err := os.ReadFile(s)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(d, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// buildChurnedDir opens a live index under dir, streams col through it,
// tombstones some documents, and returns the surviving state. With
// merge true it compacts (purging tombstones) before closing.
func buildChurnedDir(t *testing.T, dir string, merge bool) (*churnState, []uint32, [][]string, [][]rank.DocScore) {
	t.Helper()
	col := genCollection(t, 400, 43)
	queries := genQueries(t, col, 44)
	w, err := Open(Config{Dir: dir, SealDocs: 60, MergeFanIn: 3})
	if err != nil {
		t.Fatal(err)
	}
	st := newChurnState()
	for i := range col.Docs {
		id, err := w.Add(docTerms(col, &col.Docs[i]))
		if err != nil {
			t.Fatal(err)
		}
		st.add(id, i)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(431))
	var deleted []uint32
	for k := 0; k < 50; k++ {
		id, _ := st.removeAt(rng.Intn(len(st.alive)))
		if err := w.Delete(id); err != nil {
			t.Fatal(err)
		}
		deleted = append(deleted, id)
	}
	if merge {
		if err := w.MergeAll(); err != nil {
			t.Fatal(err)
		}
	}
	names := make([][]string, len(queries))
	want := make([][]rank.DocScore, len(queries))
	s := w.Searcher()
	for i, q := range queries {
		names[i] = queryNames(col, q)
		res, err := s.Search(names[i], 10)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.Top
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return st, deleted, names, want
}

// TestCrashBetweenTombstoneAndMergeCommit simulates the ISSUE's crash
// window: tombstones are committed, then the process dies after a merge
// has built (and persisted) its output segment but before the manifest
// swap. Reopen must garbage-collect the orphan merge output, keep every
// committed tombstone (no resurrected document), and lose none of the
// surviving documents.
func TestCrashBetweenTombstoneAndMergeCommit(t *testing.T) {
	liveDir := filepath.Join(t.TempDir(), "live")
	st, deleted, names, want := buildChurnedDir(t, liveDir, false)

	// Fabricate the crash leftovers a killed merge leaves: a fully
	// persisted segment directory the manifest never adopted (copied
	// from a real one, the exact shape mergeSegments produces before
	// commitLocked) plus its bitmap and a stray .tmp.
	var src string
	entries, err := os.ReadDir(liveDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "seg-") {
			src = e.Name()
			break
		}
	}
	orphan := filepath.Join(liveDir, "seg-909090")
	copyDir(t, filepath.Join(liveDir, src), orphan)
	if err := index.WriteAlive(filepath.Join(orphan, aliveName(1)),
		postings.NewAliveBitmap(4)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(liveDir, src, DocTermsFile+".tmp"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	w, err := Open(Config{Dir: liveDir, SealDocs: 60, MergeFanIn: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("orphan merge output survived reopen: %v", err)
	}
	if got := w.Stats(); got.DocsAlive != int64(len(st.alive)) {
		t.Fatalf("reopen sees %d alive, want %d — a tombstone was lost or a document resurrected",
			got.DocsAlive, len(st.alive))
	}
	for _, id := range deleted {
		if err := w.Delete(id); !errors.Is(err, ErrNotFound) {
			t.Fatalf("doc %d resurrected by the crash: %v", id, err)
		}
	}
	s := w.Searcher()
	for i := range names {
		res, err := s.Search(names[i], 10)
		if err != nil {
			t.Fatal(err)
		}
		assertSameTop(t, "post-crash", res.Top, want[i])
	}
}

// TestCrashUncommittedTombstone: a bitmap version written but never
// referenced by a manifest swap is a tombstone that never committed —
// Delete did not return. Reopen must discard it: the document stays
// alive, statistics untouched.
func TestCrashUncommittedTombstone(t *testing.T) {
	liveDir := filepath.Join(t.TempDir(), "live")
	st, _, names, want := buildChurnedDir(t, liveDir, true)

	// Find a segment and write an unreferenced bitmap version killing
	// every document — the torn write of a Delete that never returned.
	m, err := readManifest(liveDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Segments) == 0 {
		t.Fatal("no segments")
	}
	ms := m.Segments[0]
	stale := postings.NewAliveBitmap(ms.Docs)
	for i := 0; i < ms.Docs; i++ {
		stale.Kill(uint32(i))
	}
	staleName := aliveName(ms.Tomb + 7)
	if err := index.WriteAlive(filepath.Join(liveDir, ms.Name, staleName), stale); err != nil {
		t.Fatal(err)
	}

	w, err := Open(Config{Dir: liveDir, SealDocs: 60, MergeFanIn: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := os.Stat(filepath.Join(liveDir, ms.Name, staleName)); !os.IsNotExist(err) {
		t.Fatalf("uncommitted bitmap version survived reopen: %v", err)
	}
	if got := w.Stats(); got.DocsAlive != int64(len(st.alive)) {
		t.Fatalf("uncommitted tombstone applied: %d alive, want %d", got.DocsAlive, len(st.alive))
	}
	s := w.Searcher()
	for i := range names {
		res, err := s.Search(names[i], 10)
		if err != nil {
			t.Fatal(err)
		}
		assertSameTop(t, "post-crash (uncommitted tombstone)", res.Top, want[i])
	}
}

// TestLegacySegmentUpgrade: a live directory written before the delete
// path existed has no forward sidecars. Open must upgrade such
// segments in place — rebuilding docterms.fwd from the inverted lists —
// so old directories stay openable, answer identically, and accept
// deletes.
func TestLegacySegmentUpgrade(t *testing.T) {
	col := genCollection(t, 250, 47)
	queries := genQueries(t, col, 48)
	dir := t.TempDir()
	cfg := Config{Dir: dir, SealDocs: 60, MergeFanIn: 3}
	w, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	streamInto(t, w, col)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	want := make([][]rank.DocScore, len(queries))
	s := w.Searcher()
	for i, q := range queries {
		res, err := s.Search(queryNames(col, q), 10)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.Top
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Strip every sidecar: the exact on-disk shape the previous version
	// persisted.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	stripped := 0
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "seg-") {
			if err := os.Remove(filepath.Join(dir, e.Name(), DocTermsFile)); err != nil {
				t.Fatal(err)
			}
			stripped++
		}
	}
	if stripped == 0 {
		t.Fatal("no segments to strip")
	}

	w2, err := Open(cfg)
	if err != nil {
		t.Fatalf("legacy directory failed to reopen: %v", err)
	}
	defer w2.Close()
	s2 := w2.Searcher()
	for i, q := range queries {
		res, err := s2.Search(queryNames(col, q), 10)
		if err != nil {
			t.Fatal(err)
		}
		assertSameTop(t, "legacy upgrade", res.Top, want[i])
	}
	// The rebuilt sidecars must carry real term lists: a delete against
	// an upgraded segment subtracts the right statistics.
	st := newChurnState()
	for i := range col.Docs {
		st.add(uint32(i), i)
	}
	victim, _ := st.removeAt(5)
	if err := w2.Delete(victim); err != nil {
		t.Fatalf("delete on an upgraded segment: %v", err)
	}
	sub, fromRef := survivorRef(t, col, st)
	pool, err := storage.NewPool(storage.NewDisk(), 1<<15)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := index.Build(sub, pool)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := core.NewMaxScore(idx, rank.NewBM25())
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		names := queryNames(col, q)
		res, err := s2.Search(names, 10)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := ms.Search(refQuery(sub.Lex, names), 10)
		if err != nil {
			t.Fatal(err)
		}
		assertSameTop(t, "delete after legacy upgrade", res.Top, mapRef(ref, fromRef))
	}
}

// TestCrashImageAfterPurge: a crash image taken after tombstones were
// purged by merges must reopen to the identical searchable state — the
// ledger reconstruction path for purged documents (postings gone,
// forward entries retained).
func TestCrashImageAfterPurge(t *testing.T) {
	liveDir := filepath.Join(t.TempDir(), "live")
	st, deleted, names, want := buildChurnedDir(t, liveDir, true)
	image := filepath.Join(t.TempDir(), "image")
	copyDir(t, liveDir, image)

	w, err := Open(Config{Dir: image, SealDocs: 60, MergeFanIn: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if got := w.Stats(); got.DocsAlive != int64(len(st.alive)) {
		t.Fatalf("crash image reopened with %d alive, want %d", got.DocsAlive, len(st.alive))
	}
	for _, id := range deleted {
		if err := w.Delete(id); !errors.Is(err, ErrNotFound) {
			t.Fatalf("purged doc %d resurrected from the crash image: %v", id, err)
		}
	}
	s := w.Searcher()
	for i := range names {
		res, err := s.Search(names[i], 10)
		if err != nil {
			t.Fatal(err)
		}
		assertSameTop(t, "crash image after purge", res.Top, want[i])
	}
	// And the reopened image still ranks like a fresh build over the
	// survivors — the ledger arithmetic, not just the result cache.
	col := genCollection(t, 400, 43)
	sub, fromRef := survivorRef(t, col, st)
	pool, err := storage.NewPool(storage.NewDisk(), 1<<15)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := index.Build(sub, pool)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := core.NewMaxScore(idx, rank.NewBM25())
	if err != nil {
		t.Fatal(err)
	}
	for i := range names {
		res, err := s.Search(names[i], 10)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := ms.Search(refQuery(sub.Lex, names[i]), 10)
		if err != nil {
			t.Fatal(err)
		}
		assertSameTop(t, "crash image vs survivor build", res.Top, mapRef(ref, fromRef))
	}
}
