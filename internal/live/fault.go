package live

import (
	"errors"
	"fmt"
	"log"
	"sync/atomic"

	"repro/internal/postings"
	"repro/internal/storage"
)

// CrashPoint names one step of a commit protocol where a process can
// die. The writer consults Config.CrashHook at each of them, so crash
// tests become an exhaustive matrix: arm one point, run the operation,
// reopen the directory, and assert the recovered state — instead of
// hoping a kill signal lands somewhere interesting.
type CrashPoint string

const (
	// Seal protocol: build the buffered documents into a segment
	// directory, then swap the manifest.
	CrashSealBeforePersist CrashPoint = "seal:before-persist"
	CrashSealBeforeCommit  CrashPoint = "seal:before-commit"
	CrashSealAfterCommit   CrashPoint = "seal:after-commit"
	// Merge protocol: build the merged segment, install its deletion
	// bitmap, swap the manifest, retire the inputs.
	CrashMergeBeforePersist CrashPoint = "merge:before-persist"
	CrashMergeBeforeCommit  CrashPoint = "merge:before-commit"
	CrashMergeAfterCommit   CrashPoint = "merge:after-commit"
	// Delete protocol: persist the new alive-bitmap version, swap the
	// manifest, remove the superseded version.
	CrashDeleteBeforeCommit CrashPoint = "delete:before-commit"
	CrashDeleteAfterCommit  CrashPoint = "delete:after-commit"
)

// CrashPoints enumerates every named crash point — the rows of the
// crash-matrix test.
var CrashPoints = []CrashPoint{
	CrashSealBeforePersist, CrashSealBeforeCommit, CrashSealAfterCommit,
	CrashMergeBeforePersist, CrashMergeBeforeCommit, CrashMergeAfterCommit,
	CrashDeleteBeforeCommit, CrashDeleteAfterCommit,
}

// ErrCrashPoint marks an error injected by Config.CrashHook. Cleanup
// paths leave disk untouched when they see it — a real crash would not
// have run them either, and the artifacts they would remove are exactly
// what reopen's garbage collection must prove it handles.
var ErrCrashPoint = errors.New("live: injected crash")

// crash consults the injected crash hook at point p. A true return
// simulates process death there: the caller aborts immediately, leaving
// the directory exactly as a crash at that point would, and the
// returned error poisons the writer through the caller's failure path.
func (w *Writer) crash(p CrashPoint) error {
	if w.cfg.CrashHook != nil && w.cfg.CrashHook(p) {
		return fmt.Errorf("%w at %s", ErrCrashPoint, p)
	}
	return nil
}

// isDataFault classifies an error as damaged or unreadable segment
// data — the class that quarantines the segment and degrades the
// answer, as opposed to programming errors or context cancellation,
// which still fail the query.
func isDataFault(err error) bool {
	return storage.IsReadFault(err) || errors.Is(err, postings.ErrCorrupt)
}

// cleanupLogf reports best-effort cleanup failures that must not fail
// the operation that triggered them: a stale file the next Open
// garbage-collects anyway, a close on teardown. Logged rather than
// swallowed so a disk acting up is visible before it escalates.
// Replaceable in tests.
var cleanupLogf = log.Printf

// faultCounters is the writer's running account of fault handling,
// shared with every snapshot (searches quarantine segments and mark
// queries degraded without holding the writer lock).
type faultCounters struct {
	quarantines atomic.Int64 // segments quarantined (transitions, not queries)
	recovered   atomic.Int64 // segments returned to service by Reverify
	degraded    atomic.Int64 // queries answered with partial coverage
}

// FaultStats is a point-in-time snapshot of the writer's fault
// handling: how the retry, quarantine, and recovery machinery has been
// exercised, and how much of the index is currently out of service.
type FaultStats struct {
	// QuarantinedSegments is the number of segments currently skipped by
	// searches. Zero means full-coverage (exact-certificate) serving.
	QuarantinedSegments int
	// Quarantines / Recovered count lifecycle transitions: how often a
	// data fault took a segment out of service, and how often a
	// re-verification brought one back.
	Quarantines int64
	Recovered   int64
	// DegradedQueries counts searches answered with partial coverage (an
	// explicit degraded certificate instead of a failure).
	DegradedQueries int64
	// ReadRetries / ReadFaults sum the buffer-pool counters across the
	// current chain: transient read errors absorbed by backoff, and
	// fetches that failed after the retry budget.
	ReadRetries int64
	ReadFaults  int64
}

// FaultStats samples the fault-handling account across the current
// segment chain.
func (w *Writer) FaultStats() FaultStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	fs := FaultStats{
		Quarantines:     w.fc.quarantines.Load(),
		Recovered:       w.fc.recovered.Load(),
		DegradedQueries: w.fc.degraded.Load(),
	}
	for _, s := range w.segs {
		if s.quarantined.Load() {
			fs.QuarantinedSegments++
		}
		r, f := s.pool.FaultCounts()
		fs.ReadRetries += r
		fs.ReadFaults += f
	}
	return fs
}

// Reverify re-reads every quarantined segment against its open-time
// page checksums and returns recovered ones to service — the
// quarantine lifecycle's exit. Segments are immutable, so a clean full
// re-read proves the earlier fault was transient (a cabling hiccup, a
// since-healed flip) and the segment can serve again; the segment's
// page cache is dropped first so nothing read during the faulty episode
// survives. A segment that still fails stays quarantined for the next
// round. Returns the number of segments recovered.
func (w *Writer) Reverify() int {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return 0
	}
	segs := append([]*segment(nil), w.segs...)
	for _, s := range segs {
		s.acquire() // hold across the unlocked re-reads
	}
	w.mu.Unlock()
	recovered := 0
	for _, s := range segs {
		if s.quarantined.Load() && s.vdev.Verify() == nil {
			// Drop cached pages before un-quarantining; a pinned page
			// (an in-flight query that started before the quarantine)
			// defers recovery to the next round.
			if s.pool.DropAll() == nil && s.quarantined.CompareAndSwap(true, false) {
				recovered++
				w.fc.recovered.Add(1)
			}
		}
		s.release()
	}
	return recovered
}

// reverifyLoop runs Reverify every cfg.ReverifyEvery, on ticks of the
// injected clock, until the writer closes.
func (w *Writer) reverifyLoop() {
	defer w.bgDone.Done()
	t := w.cfg.Clock.NewTicker(w.cfg.ReverifyEvery)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.Chan():
			w.Reverify()
		}
	}
}
