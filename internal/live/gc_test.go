package live

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/rank"
)

// segDirs lists the seg-* directories under dir.
func segDirs(t *testing.T, dir string) map[string]bool {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "seg-") {
			out[e.Name()] = true
		}
	}
	return out
}

// TestMergeDeferredDeletion: a merge that commits while a reader still
// holds the old generation must not delete the input segments until
// that reader releases its snapshot — and must delete them then.
func TestMergeDeferredDeletion(t *testing.T) {
	col := genCollection(t, 300, 31)
	queries := genQueries(t, col, 32)
	dir := t.TempDir()
	// Manual merging so the test controls exactly when compaction runs.
	w, err := Open(Config{Dir: dir, SealDocs: 75, MergeFanIn: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	streamInto(t, w, col)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	before := segDirs(t, dir)
	if len(before) < 4 {
		t.Fatalf("want at least 4 sealed segments, got %v", before)
	}

	// Hold the pre-merge generation open, record its answers.
	snap, err := w.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	const n = 10
	want := make([][]rank.DocScore, len(queries))
	for i, q := range queries {
		res, err := snap.Search(queryNames(col, q), n)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.Top
	}

	if err := w.MergeAll(); err != nil {
		t.Fatal(err)
	}
	if w.Stats().Merges == 0 {
		t.Fatal("merge did not run")
	}
	after := segDirs(t, dir)
	for name := range before {
		if !after[name] {
			t.Fatalf("input segment %s deleted while a snapshot still holds it", name)
		}
	}

	// The held snapshot keeps answering from the old generation,
	// identically.
	for i, q := range queries {
		res, err := snap.Search(queryNames(col, q), n)
		if err != nil {
			t.Fatal(err)
		}
		assertSameTop(t, "held snapshot", res.Top, want[i])
	}
	// And a fresh snapshot serves the merged chain with the same
	// answers.
	fresh, err := w.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Segments() >= snap.Segments() {
		t.Fatalf("merge did not shrink the chain: %d -> %d", snap.Segments(), fresh.Segments())
	}
	for i, q := range queries {
		res, err := fresh.Search(queryNames(col, q), n)
		if err != nil {
			t.Fatal(err)
		}
		assertSameTop(t, "post-merge snapshot", res.Top, want[i])
	}
	fresh.Close()

	// Releasing the last holder of the old generation deletes exactly
	// the merged-away inputs.
	snap.Close()
	final := segDirs(t, dir)
	deleted := 0
	for name := range before {
		if !final[name] {
			deleted++
		}
	}
	if deleted == 0 {
		t.Fatalf("no merged input was deleted after the last snapshot released (dirs %v)", final)
	}
	surviving, err := w.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	defer surviving.Close()
	if got := len(final); got != surviving.Segments() {
		t.Fatalf("%d segment dirs on disk, current generation holds %d", got, surviving.Segments())
	}
}

// TestStaleSegmentGC simulates a crash between the manifest swap and
// the deferred deletion of merged inputs: segment directories not
// listed in the manifest must be ignored and garbage-collected on
// reopen, and answers must be unaffected.
func TestStaleSegmentGC(t *testing.T) {
	col := genCollection(t, 200, 41)
	queries := genQueries(t, col, 42)
	dir := t.TempDir()
	cfg := Config{Dir: dir, SealDocs: 50, MergeFanIn: 4}
	w, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	streamInto(t, w, col)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	const n = 10
	s := w.Searcher()
	want := make([][]rank.DocScore, len(queries))
	for i, q := range queries {
		res, err := s.Search(queryNames(col, q), n)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.Top
	}
	live := segDirs(t, dir)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Fake two crash leftovers: a full copy of a real segment under an
	// unlisted name (the shape a completed-but-unswapped merge leaves)
	// and a junk directory.
	var src string
	for name := range live {
		src = name
		break
	}
	stale := filepath.Join(dir, "seg-909090")
	if err := os.MkdirAll(stale, 0o755); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, src, "segment.topn"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(stale, "segment.topn"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	junk := filepath.Join(dir, "seg-999999")
	if err := os.MkdirAll(junk, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(junk, "segment.topn"), []byte("not a segment"), 0o644); err != nil {
		t.Fatal(err)
	}

	w2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	after := segDirs(t, dir)
	if after["seg-909090"] || after["seg-999999"] {
		t.Fatalf("stale segment directories survived reopen: %v", after)
	}
	for name := range live {
		if !after[name] {
			t.Fatalf("live segment %s was garbage-collected", name)
		}
	}
	s2 := w2.Searcher()
	for i, q := range queries {
		res, err := s2.Search(queryNames(col, q), n)
		if err != nil {
			t.Fatal(err)
		}
		assertSameTop(t, "post-gc", res.Top, want[i])
	}
}

// TestDirLock: a live directory is single-writer — a second Open fails
// cleanly while the first holds it, and succeeds after Close releases
// the flock.
func TestDirLock(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Config{Dir: dir}); err == nil {
		t.Fatal("second Open on a held directory succeeded; silent corruption would follow")
	} else if !strings.Contains(err.Error(), "in use") {
		t.Fatalf("second Open failed for the wrong reason: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatalf("Open after Close: %v", err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFreshDirWithoutManifest: with no manifest, the directory reads as
// an empty index and stray segment directories are collected — the
// manifest is the root of truth.
func TestFreshDirWithoutManifest(t *testing.T) {
	dir := t.TempDir()
	stray := filepath.Join(dir, "seg-000123")
	if err := os.MkdirAll(stray, 0o755); err != nil {
		t.Fatal(err)
	}
	w, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Fatalf("stray segment directory survived fresh open: %v", err)
	}
	snap, err := w.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	if snap.NumDocs() != 0 || snap.Segments() != 0 {
		t.Fatalf("fresh index not empty: %d docs, %d segments", snap.NumDocs(), snap.Segments())
	}
}
