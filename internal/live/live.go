// Package live turns the batch index into a serving system: it accepts
// document writes — adds, deletes, and updates — while queries run,
// with no full rebuild and no stop-the-world swap.
//
// The write lifecycle is buffer → seal → merge → swap:
//
//	buffer  Writer.Add interns terms into the master lexicon, records
//	        global term statistics, and appends the document to an
//	        in-memory buffer. Buffered documents become searchable at
//	        the next seal (near-real-time semantics).
//	seal    When the buffer trips a size threshold (documents or
//	        tokens), or Flush is called, the buffer is built into an
//	        immutable block-max index, persisted as an on-disk segment
//	        (index.Persist), reopened through its own buffer pool, and
//	        appended to the active segment chain.
//	merge   A background Merger picks runs of small adjacent segments
//	        (tiered policy, priced by internal/cost) and compacts them
//	        into one block-max segment (index.Merge), retiring the
//	        inputs.
//	swap    Every seal and merge commits atomically: the manifest is
//	        written via temp-file + rename, and a new immutable
//	        generation (segment set + frozen lexicon + corpus
//	        statistics + per-segment engines) is installed with one
//	        pointer swap.
//
// The delete lifecycle is tombstone → filtered search → merge purge:
//
//	tombstone  Writer.Delete clones the segment's alive bitmap, kills
//	           the bit, persists the new bitmap version next to the
//	           segment, and commits by manifest swap — crash-atomic
//	           like every other commit. Update is delete + re-add
//	           under a fresh global id.
//	filter     Generations read each segment through index.WithAlive:
//	           iterators skip dead postings, engines run unmodified,
//	           and the unfiltered block/list bounds stay valid upper
//	           bounds. A tombstone ledger (the deleted documents' term
//	           statistics, recovered from per-segment forward
//	           sidecars) is subtracted from the frozen lexicon at
//	           install, so ranking statistics cover exactly the
//	           survivors — results stay byte-identical to a one-shot
//	           build over the surviving documents.
//	purge      Merges drop dead documents' postings (ids stay as holes
//	           so global ids never shift) and re-tighten every bound;
//	           a segment whose stored-dead fraction reaches
//	           PurgeDeadFrac is rewritten alone.
//
// The snapshot/refcount contract: a search acquires the current
// generation (refcount +1) and evaluates against it end to end, so a
// merge — or a delete — committing mid-query never invalidates the
// view the query is reading: bitmaps are immutable values, swapped per
// commit. Segments are refcounted by the generations that contain
// them; when the last generation referencing a merged-away segment is
// released, its file is closed and its directory deleted. A crash
// between the manifest swap and that deferred deletion leaves stale
// segment directories behind — Open treats the manifest as the root of
// truth and garbage-collects any seg-* directory (or alive-bitmap
// version file) it does not list.
//
// Scoring is globally consistent: each generation ranks every segment
// with the latest seal's frozen lexicon snapshot plus the generation's
// corpus statistics — both covering exactly the sealed, searchable
// documents (the same global-statistics fix the parallel layer applies
// to shards) — so the merged top N is byte-identical to a one-shot
// build over the same documents.
// Durability is seal-grained: documents still in the buffer at a crash
// are lost along with their statistics — the master lexicon reopens
// from the segment persisting the newest lexicon snapshot (highest
// capture ordinal), which covers exactly the sealed documents. A live
// directory is single-writer: Open takes an advisory flock (released
// by the kernel on process death), so a second process fails cleanly
// instead of interleaving manifests.
package live

import (
	"errors"
	"runtime"
	"time"

	"repro/internal/cost"
	"repro/internal/rank"
	"repro/internal/storage"
	"repro/internal/tune"
)

// ErrClosed is returned by operations on a closed Writer.
var ErrClosed = errors.New("live: writer is closed")

// Config sizes a live index. Zero values take the documented defaults.
type Config struct {
	// Dir is the live index directory (manifest + segment directories).
	// Required.
	Dir string
	// SealDocs seals the buffer when it holds this many documents.
	// Default 512.
	SealDocs int
	// SealTokens seals the buffer when it holds this many tokens.
	// Default 1<<20.
	SealTokens int64
	// FlushEvery seals a non-empty buffer at this interval from a
	// background goroutine, bounding search-visibility latency under
	// trickle writes. 0 (default) disables the timer; Flush remains
	// available.
	FlushEvery time.Duration
	// PoolPages is the buffer-pool capacity, in pages, each open segment
	// is served through. Default 64, floor 8.
	PoolPages int
	// Scorer ranks searches. Default rank.NewBM25().
	Scorer rank.Scorer
	// Workers bounds the per-search segment fan-out. Default
	// runtime.GOMAXPROCS(0).
	Workers int
	// MergeFanIn is the run length the tiered merge policy looks for.
	// Default 4.
	MergeFanIn int
	// MergeTierFactor is the size spread a run may have: every segment in
	// a merged run holds at most this factor times the run's smallest
	// segment's documents. Default 3.
	MergeTierFactor float64
	// MaxMergeDocs caps the document count of a merged segment; runs that
	// would exceed it are not merged. 0 (default) means no cap.
	MaxMergeDocs int
	// MergeHorizon is the amortization horizon, in queries, the cost
	// model uses to decide whether a merge pays for itself
	// (cost.MergeEstimate.Worthwhile). Valid range: >= 0. Default (0)
	// is 1000; negative values are rejected by Open — they would make
	// every merge non-worthwhile and silently disable background
	// compaction forever.
	MergeHorizon int
	// PageWeight converts page touches into decode units for the merge
	// cost model. Default cost.DefaultPageWeight.
	PageWeight float64
	// BackgroundMerge starts the merger goroutine. When false, merges
	// only run through MergeAll — the deterministic mode the benchmark
	// harness uses.
	BackgroundMerge bool
	// PurgeDeadFrac triggers a single-segment purge rewrite when at
	// least this fraction of a segment's stored documents are tombstoned
	// (dead but still occupying postings). The rewrite drops their
	// postings and re-tightens the block bounds. Valid range: >= 0.
	// Default (0) is 0.5; values above 1 disable purge rewrites
	// (tombstones are then only reclaimed when a tiered merge happens to
	// cover the segment); negative values are rejected by Open — every
	// segment would qualify for an endless rewrite loop.
	PurgeDeadFrac float64
	// Clock supplies the flush timer, injectable so seal-timer behavior
	// is deterministically testable. Default: the wall clock
	// (time.NewTicker).
	Clock Clock
	// WrapDevice, if set, wraps the page device of every segment as it
	// is opened — the fault-injection seam. The wrapper sees the
	// segment's directory name and its raw file device and returns the
	// device the checksum layer and buffer pool are stacked on (e.g. a
	// storage.FaultDevice the test keeps a handle to). nil serves the
	// file directly.
	WrapDevice func(segment string, dev storage.Device) storage.Device
	// CrashHook, if set, is consulted at every named CrashPoint of the
	// seal, merge, and delete commit protocols. Returning true simulates
	// a process death at that point: the operation aborts with the
	// directory exactly as a crash there would leave it, and the writer
	// is poisoned. Crash-matrix tests arm one point per run and assert
	// what Open recovers.
	CrashHook func(CrashPoint) bool
	// ReverifyEvery runs the background re-verification loop at this
	// interval (on Clock ticks): quarantined segments whose full re-read
	// matches the open-time page checksums return to service. 0
	// (default) disables the loop; Reverify remains callable.
	ReverifyEvery time.Duration
	// ResultCacheBytes bounds the query result cache. Entries are whole
	// Results keyed by (generation, N, resolved query terms), so a hit
	// returns the byte-identical answer the search would have computed;
	// every commit moves the generation and thereby invalidates the
	// cache wholesale. Degraded answers are never cached. 0 (default)
	// disables the cache.
	ResultCacheBytes int64
	// BlockCacheBytes bounds the shared hot-block cache: decoded-input
	// postings blocks of all segments, admitted by a TinyLFU frequency
	// sketch so one scan cannot flush the resident hot set. A hit serves
	// the block without touching the segment's buffer pool (and without
	// counting a fault). 0 (default) disables the cache.
	BlockCacheBytes int64
	// Tune, if set, closes the loop between the cost model and the live
	// counters: the writer feeds it per-query decode/fault observations,
	// per-merge realized costs, and pool fault latencies; in return the
	// merge/purge planner prices candidates with its calibrated page
	// weight and fan-out (ranking all candidates by predicted net
	// benefit instead of taking the first qualifying run), and SealDocs,
	// MergeFanIn, and PoolPages adapt within the tuner's configured
	// bounds. nil (default) keeps every knob static and the planner
	// byte-identical to the untuned policy. A Tuner must not be shared
	// between writers.
	Tune *tune.Tuner
	// Follower opens the directory in replica mode: the writer is
	// read-only (Add/Flush/Delete/Update/MergeAll fail with ErrReadOnly,
	// and BackgroundMerge/FlushEvery must be unset) and new state arrives
	// only through ApplyManifest, after a replication puller has
	// committed the referenced segment files under Dir. Open's stale-
	// artifact GC also reclaims pull staging directories ("pull-*") and
	// stray temp files a mid-pull crash left behind. Searches, snapshots,
	// caches, and Reverify work exactly as on a leader.
	Follower bool
}

func (c *Config) fillDefaults() {
	if c.SealDocs == 0 {
		c.SealDocs = 512
	}
	if c.SealTokens == 0 {
		c.SealTokens = 1 << 20
	}
	if c.PoolPages == 0 {
		c.PoolPages = 64
	}
	if c.PoolPages < 8 {
		c.PoolPages = 8
	}
	if c.Scorer == nil {
		c.Scorer = rank.NewBM25()
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MergeFanIn == 0 {
		c.MergeFanIn = 4
	}
	if c.MergeTierFactor == 0 {
		c.MergeTierFactor = 3
	}
	if c.MergeHorizon == 0 {
		c.MergeHorizon = 1000
	}
	if c.PageWeight == 0 {
		c.PageWeight = cost.DefaultPageWeight
	}
	if c.PurgeDeadFrac == 0 {
		c.PurgeDeadFrac = 0.5
	}
	if c.Clock == nil {
		c.Clock = wallClock{}
	}
}

// TermCount is one distinct term of an incoming document with its
// within-document frequency.
type TermCount struct {
	Term string
	TF   int32
}

// WriterStats is a point-in-time snapshot of the writer's accounting.
type WriterStats struct {
	DocsAdded    int64  // documents accepted by Add
	DocsSealed   int64  // documents made durable in segments (dead ones included)
	DocsDeleted  int64  // documents tombstoned by Delete/Update
	DocsAlive    int64  // sealed documents currently alive
	BufferedDocs int    // documents awaiting the next seal (dead ones excluded)
	Seals        int64  // segments sealed
	Merges       int64  // background merges committed (purge rewrites included)
	Segments     int    // active segments in the current generation
	Generation   uint64 // current manifest generation
}
