package live

import (
	"errors"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/lexicon"
	"repro/internal/rank"
	"repro/internal/storage"
)

// churnState tracks which live global ids are alive and which original
// collection document each one carries (updates re-ingest the same
// content under a fresh id).
type churnState struct {
	alive   []uint32 // sorted ascending: ids are assigned monotonically
	content map[uint32]int
}

func newChurnState() *churnState {
	return &churnState{content: map[uint32]int{}}
}

func (c *churnState) add(id uint32, doc int) {
	c.alive = append(c.alive, id)
	c.content[id] = doc
}

// removeAt drops the alive entry at position i, returning its id.
func (c *churnState) removeAt(i int) (uint32, int) {
	id := c.alive[i]
	doc := c.content[id]
	c.alive = append(c.alive[:i], c.alive[i+1:]...)
	delete(c.content, id)
	return id, doc
}

// survivorRef builds the fresh one-shot baseline over the surviving
// documents: a new lexicon interned from scratch in arrival order, so
// its statistics — term and corpus alike — cover exactly the survivors.
// fromRef maps baseline ids back to live global ids.
func survivorRef(t *testing.T, col *collection.Collection, st *churnState) (*collection.Collection, []uint32) {
	t.Helper()
	sub := &collection.Collection{Lex: lexicon.New()}
	fromRef := make([]uint32, len(st.alive))
	for i, id := range st.alive {
		src := &col.Docs[st.content[id]]
		d := collection.Document{ID: uint32(i)}
		for _, tf := range src.Terms {
			d.Terms = append(d.Terms, collection.TermFreq{
				Term: sub.Lex.Intern(col.Lex.Name(tf.Term)), TF: tf.TF,
			})
			d.Len += tf.TF
		}
		sort.Slice(d.Terms, func(a, b int) bool { return d.Terms[a].Term < d.Terms[b].Term })
		for _, tf := range d.Terms {
			if err := sub.Lex.Record(tf.Term, int(tf.TF)); err != nil {
				t.Fatal(err)
			}
		}
		sub.Docs = append(sub.Docs, d)
		sub.TotalTokens += int64(d.Len)
		fromRef[i] = id
	}
	if len(sub.Docs) > 0 {
		sub.AvgDocLen = float64(sub.TotalTokens) / float64(len(sub.Docs))
	}
	return sub, fromRef
}

// refQuery maps a query's term names into the baseline lexicon,
// dropping names the survivors no longer contain (the live side skips
// them through a zero document frequency — same outcome).
func refQuery(lex *lexicon.Lexicon, names []string) collection.Query {
	var q collection.Query
	for _, name := range names {
		if id := lex.Lookup(name); id != lexicon.InvalidTerm {
			q.Terms = append(q.Terms, id)
		}
	}
	return q
}

// mapRef rewrites a baseline ranking onto live global ids.
func mapRef(top []rank.DocScore, fromRef []uint32) []rank.DocScore {
	out := append([]rank.DocScore(nil), top...)
	for i := range out {
		out[i].DocID = fromRef[out[i].DocID]
	}
	return out
}

// TestDeleteEquivalence is the acceptance test of the delete path: after
// an arbitrary deterministic interleaving of Add, Delete, Update, Flush,
// and MergeAll, live search results must be byte-identical to a fresh
// one-shot build over the surviving documents — across all three engine
// families — and every answer must keep its exactness certificate.
func TestDeleteEquivalence(t *testing.T) {
	col := genCollection(t, 900, 17)
	queries := genQueries(t, col, 18)
	w, err := Open(Config{Dir: t.TempDir(), SealDocs: 90, MergeFanIn: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	st := newChurnState()
	rng := rand.New(rand.NewSource(171))
	next := 0
	for next < len(col.Docs) {
		switch op := rng.Intn(10); {
		case op < 6 || len(st.alive) < 10:
			id, err := w.Add(docTerms(col, &col.Docs[next]))
			if err != nil {
				t.Fatal(err)
			}
			st.add(id, next)
			next++
		case op < 8: // delete a random alive document (buffered or sealed)
			id, _ := st.removeAt(rng.Intn(len(st.alive)))
			if err := w.Delete(id); err != nil {
				t.Fatalf("delete %d: %v", id, err)
			}
		case op == 8: // update: same content, fresh id
			id, doc := st.removeAt(rng.Intn(len(st.alive)))
			nid, err := w.Update(id, docTerms(col, &col.Docs[doc]))
			if err != nil {
				t.Fatalf("update %d: %v", id, err)
			}
			st.add(nid, doc)
		default: // interleave flushes and merges with the churn
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
			if rng.Intn(2) == 0 {
				if err := w.MergeAll(); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := w.MergeAll(); err != nil {
		t.Fatal(err)
	}
	ws := w.Stats()
	if ws.DocsDeleted == 0 || ws.Merges == 0 {
		t.Fatalf("churn too tame for the test to mean anything: %+v", ws)
	}
	if ws.DocsAlive != int64(len(st.alive)) {
		t.Fatalf("writer sees %d alive docs, churn state %d", ws.DocsAlive, len(st.alive))
	}

	// One-shot baselines over exactly the survivors.
	sub, fromRef := survivorRef(t, col, st)
	pool, err := storage.NewPool(storage.NewDisk(), 1<<15)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := index.Build(sub, pool)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := core.NewMaxScore(idx, rank.NewBM25())
	if err != nil {
		t.Fatal(err)
	}
	fx, err := index.BuildFragmented(sub, pool, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := core.NewEngine(fx, rank.NewBM25())
	if err != nil {
		t.Fatal(err)
	}
	mx, err := index.BuildMulti(sub, pool, []float64{0.05, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := core.NewProgressive(mx, rank.NewBM25())
	if err != nil {
		t.Fatal(err)
	}

	const n = 10
	searcher := w.Searcher()
	for _, q := range queries {
		names := queryNames(col, q)
		live, err := searcher.Search(names, n)
		if err != nil {
			t.Fatal(err)
		}
		if !live.Exact {
			t.Fatalf("query %d: live merge lost its exactness certificate under churn", q.ID)
		}
		rq := refQuery(sub.Lex, names)

		msTop, err := ms.Search(rq, n)
		if err != nil {
			t.Fatal(err)
		}
		assertSameTop(t, "vs MaxScore over survivors", live.Top, mapRef(msTop, fromRef))

		full, err := engine.Search(rq, core.Options{N: n, Mode: core.ModeFull})
		if err != nil {
			t.Fatal(err)
		}
		assertSameTop(t, "vs Engine/full over survivors", live.Top, mapRef(full.Top, fromRef))

		pr, err := prog.Search(rq, core.ProgressiveOptions{N: n})
		if err != nil {
			t.Fatal(err)
		}
		if !pr.Exact {
			t.Fatalf("query %d: progressive baseline not exact", q.ID)
		}
		assertSameTop(t, "vs Progressive over survivors", live.Top, mapRef(pr.Top, fromRef))
	}
}

// TestDeleteSnapshotVisibility: a delete committed mid-query is
// invisible to in-flight searches — a snapshot acquired before the
// delete keeps answering from its deletion view, while a snapshot
// acquired after sees the document gone with tightened statistics.
func TestDeleteSnapshotVisibility(t *testing.T) {
	col := genCollection(t, 200, 23)
	queries := genQueries(t, col, 24)
	w, err := Open(Config{Dir: t.TempDir(), SealDocs: 50})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	streamInto(t, w, col)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	const n = 10
	old, err := w.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	defer old.Close()
	before := make([][]rank.DocScore, len(queries))
	for i, q := range queries {
		res, err := old.Search(queryNames(col, q), n)
		if err != nil {
			t.Fatal(err)
		}
		before[i] = res.Top
	}

	// Delete the top document of the first query with results.
	var victim uint32
	found := false
	for _, top := range before {
		if len(top) > 0 {
			victim = top[0].DocID
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no query produced results; bad test corpus")
	}
	if err := w.Delete(victim); err != nil {
		t.Fatal(err)
	}

	// The held snapshot still answers identically — the victim included.
	for i, q := range queries {
		res, err := old.Search(queryNames(col, q), n)
		if err != nil {
			t.Fatal(err)
		}
		assertSameTop(t, "pre-delete snapshot", res.Top, before[i])
	}
	// A fresh snapshot never returns the victim.
	fresh, err := w.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	if fresh.NumDocs() != len(col.Docs)-1 {
		t.Fatalf("fresh snapshot sees %d docs, want %d", fresh.NumDocs(), len(col.Docs)-1)
	}
	for _, q := range queries {
		res, err := fresh.Search(queryNames(col, q), n)
		if err != nil {
			t.Fatal(err)
		}
		for _, ds := range res.Top {
			if ds.DocID == victim {
				t.Fatalf("deleted doc %d resurfaced in a post-delete snapshot", victim)
			}
		}
	}
}

// TestDeleteBufferedAndErrors: deleting a never-sealed document leaves
// no trace anywhere (statistics, ids, or disk — its slot seals as an
// empty forward entry that the reopened ledger must never subtract),
// and the error contract holds — unknown ids, double deletes, and
// malformed updates all fail cleanly without mutating state.
func TestDeleteBufferedAndErrors(t *testing.T) {
	col := genCollection(t, 120, 27)
	queries := genQueries(t, col, 28)
	dir := t.TempDir()
	w, err := Open(Config{Dir: dir, SealDocs: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	st := newChurnState()
	for i := range col.Docs {
		id, err := w.Add(docTerms(col, &col.Docs[i]))
		if err != nil {
			t.Fatal(err)
		}
		st.add(id, i)
	}
	// Tombstone a buffered slice of the corpus before anything seals.
	for k := 0; k < 30; k++ {
		id, _ := st.removeAt((k * 7) % len(st.alive))
		if err := w.Delete(id); err != nil {
			t.Fatal(err)
		}
		if err := w.Delete(id); !errors.Is(err, ErrNotFound) {
			t.Fatalf("double delete of buffered %d: %v, want ErrNotFound", id, err)
		}
	}
	if err := w.Delete(1 << 30); !errors.Is(err, ErrNotFound) {
		t.Fatalf("delete of unassigned id: %v, want ErrNotFound", err)
	}
	if _, err := w.Update(st.alive[0], nil); err == nil {
		t.Fatal("empty replacement accepted; the original must not have been deleted for it")
	}
	if _, err := w.Update(st.alive[0], []TermCount{{Term: "x", TF: -1}}); err == nil {
		t.Fatal("negative-tf replacement accepted")
	}
	// Both rejected updates must have left the original untouched.
	if err := w.Delete(st.alive[0]); err != nil {
		t.Fatalf("original was mutated by a rejected update: %v", err)
	}
	_, _ = st.removeAt(0)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	ws := w.Stats()
	if ws.DocsAlive != int64(len(st.alive)) || ws.BufferedDocs != 0 {
		t.Fatalf("after flush: %+v, want %d alive", ws, len(st.alive))
	}

	sub, fromRef := survivorRef(t, col, st)
	pool, err := storage.NewPool(storage.NewDisk(), 1<<15)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := index.Build(sub, pool)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := core.NewMaxScore(idx, rank.NewBM25())
	if err != nil {
		t.Fatal(err)
	}
	s := w.Searcher()
	const n = 10
	for _, q := range queries {
		names := queryNames(col, q)
		res, err := s.Search(names, n)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ms.Search(refQuery(sub.Lex, names), n)
		if err != nil {
			t.Fatal(err)
		}
		assertSameTop(t, "buffered deletes", res.Top, mapRef(want, fromRef))
	}

	// Reopen: the dead slots persisted as empty forward entries, which
	// the ledger reconstruction must skip — their statistics were never
	// in any snapshot, so subtracting them would underflow or, worse,
	// silently skew every IDF.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := Open(Config{Dir: dir, SealDocs: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if got := w2.Stats(); got.DocsAlive != int64(len(st.alive)) {
		t.Fatalf("reopen sees %d alive, want %d", got.DocsAlive, len(st.alive))
	}
	s2 := w2.Searcher()
	for _, q := range queries {
		names := queryNames(col, q)
		res, err := s2.Search(names, n)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ms.Search(refQuery(sub.Lex, names), n)
		if err != nil {
			t.Fatal(err)
		}
		assertSameTop(t, "buffered deletes after reopen", res.Top, mapRef(want, fromRef))
	}
}

// TestPurgeRewrite: once enough of a segment is tombstoned, the merge
// policy rewrites it alone — reclaiming the dead postings, zeroing the
// dead lengths, re-tightening bounds — without changing a single
// answer, and the reclaimed tombstones never resurrect.
func TestPurgeRewrite(t *testing.T) {
	col := genCollection(t, 300, 33)
	queries := genQueries(t, col, 34)
	w, err := Open(Config{Dir: t.TempDir(), SealDocs: 300, PurgeDeadFrac: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	st := newChurnState()
	for i := range col.Docs {
		id, err := w.Add(docTerms(col, &col.Docs[i]))
		if err != nil {
			t.Fatal(err)
		}
		st.add(id, i)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(331))
	for k := 0; k < 150; k++ {
		id, _ := st.removeAt(rng.Intn(len(st.alive)))
		if err := w.Delete(id); err != nil {
			t.Fatal(err)
		}
	}

	const n = 10
	s := w.Searcher()
	preTop := make([][]rank.DocScore, len(queries))
	for i, q := range queries {
		res, err := s.Search(queryNames(col, q), n)
		if err != nil {
			t.Fatal(err)
		}
		preTop[i] = res.Top
	}
	sizeBefore := segmentsSize(t, w)
	if err := w.MergeAll(); err != nil {
		t.Fatal(err)
	}
	if w.Stats().Merges == 0 {
		t.Fatal("purge rewrite did not run at 50% dead")
	}
	if size := segmentsSize(t, w); size >= sizeBefore {
		t.Fatalf("purge did not reclaim postings space: %d -> %d bytes", sizeBefore, size)
	}
	for i, q := range queries {
		res, err := s.Search(queryNames(col, q), n)
		if err != nil {
			t.Fatal(err)
		}
		assertSameTop(t, "post-purge", res.Top, preTop[i])
	}
	// A second MergeAll finds nothing: the rewrite must not re-qualify
	// its own output (the dead are purged, not forgotten).
	m := w.Stats().Merges
	if err := w.MergeAll(); err != nil {
		t.Fatal(err)
	}
	if got := w.Stats().Merges; got != m {
		t.Fatalf("purge rewrite loops: %d -> %d merges", m, got)
	}
}

// segmentsSize sums the compressed postings bytes of the current chain.
func segmentsSize(t *testing.T, w *Writer) int64 {
	t.Helper()
	w.mu.Lock()
	defer w.mu.Unlock()
	var total int64
	for _, s := range w.segs {
		total += s.bytes
	}
	return total
}

// TestDeleteReopen: tombstones — purged and unpurged alike — survive
// close and reopen: the ledger is rebuilt from the bitmaps and forward
// sidecars, so the reopened index ranks byte-identically to the
// survivor baseline, keeps rejecting deleted ids, and accepts new
// writes on top.
func TestDeleteReopen(t *testing.T) {
	col := genCollection(t, 500, 37)
	queries := genQueries(t, col, 38)
	dir := t.TempDir()
	cfg := Config{Dir: dir, SealDocs: 60, MergeFanIn: 3}
	w, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := newChurnState()
	half := len(col.Docs) / 2
	for i := 0; i < half; i++ {
		id, err := w.Add(docTerms(col, &col.Docs[i]))
		if err != nil {
			t.Fatal(err)
		}
		st.add(id, i)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(371))
	var deleted []uint32
	for k := 0; k < 60; k++ {
		id, _ := st.removeAt(rng.Intn(len(st.alive)))
		if err := w.Delete(id); err != nil {
			t.Fatal(err)
		}
		deleted = append(deleted, id)
	}
	if err := w.MergeAll(); err != nil { // purges some tombstones
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if got := w2.Stats(); got.DocsAlive != int64(len(st.alive)) {
		t.Fatalf("reopen sees %d alive docs, want %d (%+v)", got.DocsAlive, len(st.alive), got)
	}
	for _, id := range deleted {
		if err := w2.Delete(id); !errors.Is(err, ErrNotFound) {
			t.Fatalf("deleted doc %d deletable again after reopen: %v", id, err)
		}
	}

	sub, fromRef := survivorRef(t, col, st)
	pool, err := storage.NewPool(storage.NewDisk(), 1<<15)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := index.Build(sub, pool)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := core.NewMaxScore(idx, rank.NewBM25())
	if err != nil {
		t.Fatal(err)
	}
	s2 := w2.Searcher()
	const n = 10
	for _, q := range queries {
		names := queryNames(col, q)
		res, err := s2.Search(names, n)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ms.Search(refQuery(sub.Lex, names), n)
		if err != nil {
			t.Fatal(err)
		}
		assertSameTop(t, "reopen after deletes", res.Top, mapRef(want, fromRef))
	}

	// The reopened writer keeps accepting — and deleting — new work.
	for i := half; i < len(col.Docs); i++ {
		id, err := w2.Add(docTerms(col, &col.Docs[i]))
		if err != nil {
			t.Fatal(err)
		}
		st.add(id, i)
	}
	id, _ := st.removeAt(len(st.alive) - 3)
	nid, err := w2.Update(id, docTerms(col, &col.Docs[0]))
	if err != nil {
		t.Fatal(err)
	}
	st.add(nid, 0)
	if err := w2.Flush(); err != nil {
		t.Fatal(err)
	}
	sub2, fromRef2 := survivorRef(t, col, st)
	idx2, err := index.Build(sub2, pool)
	if err != nil {
		t.Fatal(err)
	}
	ms2, err := core.NewMaxScore(idx2, rank.NewBM25())
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		names := queryNames(col, q)
		res, err := s2.Search(names, n)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ms2.Search(refQuery(sub2.Lex, names), n)
		if err != nil {
			t.Fatal(err)
		}
		assertSameTop(t, "reopen + appended churn", res.Top, mapRef(want, fromRef2))
	}
}
