package live

// CacheStats is a point-in-time view of the three cache layers on the
// query path: the whole-answer result cache, the shared hot-block cache
// under every segment's postings store, and the per-engine term-bound
// memos of the current generation. Counters are cumulative since Open;
// bound-memo counters cover only the current generation (each commit
// builds fresh engines, which is exactly what invalidates the memos).
type CacheStats struct {
	// Result cache (zero-valued when Config.ResultCacheBytes is 0).
	ResultHits    int64
	ResultMisses  int64
	ResultBytes   int64
	ResultEntries int64
	// SingleflightShared counts answers served from another identical
	// in-flight query's search instead of running their own.
	SingleflightShared int64

	// Hot-block cache (zero-valued when Config.BlockCacheBytes is 0).
	BlockHits    int64
	BlockMisses  int64
	BlockAdmits  int64
	BlockRejects int64
	BlockEvicts  int64
	BlockBytes   int64
	BlockEntries int64

	// Term-bound memo, summed over the current generation's engines.
	BoundHits   int64
	BoundMisses int64
}

// CacheStats samples every cache layer's counters.
func (w *Writer) CacheStats() CacheStats {
	var cs CacheStats
	if w.resCache != nil {
		cs.ResultHits, cs.ResultMisses, cs.SingleflightShared,
			cs.ResultBytes, cs.ResultEntries = w.resCache.stats()
	}
	if w.blockCache != nil {
		s := w.blockCache.Stats()
		cs.BlockHits = s.Hits
		cs.BlockMisses = s.Misses
		cs.BlockAdmits = s.Admits
		cs.BlockRejects = s.Rejects
		cs.BlockEvicts = s.Evicts
		cs.BlockBytes = s.Bytes
		cs.BlockEntries = s.Entries
	}
	w.mu.Lock()
	g := w.cur
	w.mu.Unlock()
	if g != nil {
		for _, e := range g.engines {
			h, m := e.BoundCacheStats()
			cs.BoundHits += h
			cs.BoundMisses += m
		}
	}
	return cs
}
