package live

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/collection"
	"repro/internal/lexicon"
	"repro/internal/rank"
	"repro/internal/topk"
	"repro/internal/tune"
)

// Result is the merged outcome of one live search.
type Result struct {
	// Top is the global top N (global document ids, in arrival order of
	// the documents).
	Top []rank.DocScore
	// Exact is the merge's certificate that Top is provably the true top
	// N over the snapshot. Every segment evaluates exactly, so in
	// healthy operation it is always true; it drops exactly when
	// Degraded is set — an unserved segment may hide arbitrarily good
	// documents.
	Exact bool
	// Degraded reports that at least one segment was quarantined and the
	// answer covers only the segments served. The query did not fail:
	// degradation is explicit, never silent — Cert says which segments
	// were skipped and how much coverage remains.
	Degraded bool
	// Cert is the explicit coverage certificate: exactness, segments
	// served of total, and the names of any skipped segments.
	Cert topk.Certificate
	// Segments is the snapshot's segment count — the fragmentation the
	// query paid for.
	Segments int
	// Generation identifies the snapshot served.
	Generation uint64
}

// Snapshot is one acquired generation: an immutable view of the live
// index a query (or a batch of queries) evaluates against. Merges and
// seals committing concurrently never change or invalidate it; the
// segments it references stay on disk until the snapshot is closed.
// Close it promptly — a held snapshot pins merged-away segments' disk
// space. A Snapshot is safe for concurrent Search calls, and Close
// synchronizes with them: it blocks until in-flight searches drain, so
// the generation reference (and with it the segment files) cannot be
// released under a search that already started.
type Snapshot struct {
	g       *generation
	workers int
	fc      *faultCounters // the writer's fault account; nil in tests that build snapshots by hand
	tn      *tune.Tuner    // the writer's tuner; nil when untuned

	mu       sync.RWMutex // searches hold it shared; Close exclusively
	released bool
}

// Acquire takes a refcounted snapshot of the current generation.
func (w *Writer) Acquire() (*Snapshot, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed || w.cur == nil {
		return nil, ErrClosed
	}
	w.cur.refs.Add(1)
	return &Snapshot{g: w.cur, workers: w.cfg.Workers, fc: &w.fc, tn: w.cfg.Tune}, nil
}

// Close releases the snapshot's generation reference, waiting out any
// in-flight Search first. Closing twice is a no-op.
func (s *Snapshot) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.released {
		s.released = true
		s.g.release()
	}
}

// Generation identifies the snapshot.
func (s *Snapshot) Generation() uint64 { return s.g.id }

// Segments reports how many segments the snapshot serves from.
func (s *Snapshot) Segments() int { return len(s.g.segs) }

// NumDocs reports the searchable document count.
func (s *Snapshot) NumDocs() int { return s.g.corpus.NumDocs }

// ResetCounters zeroes the decode/skip/fault counters of every segment
// in the snapshot (the benchmark harness brackets probe batches with
// this).
func (s *Snapshot) ResetCounters() {
	for _, seg := range s.g.segs {
		seg.idx.Counters().Reset()
	}
}

// Counters sums the decode/skip/fault counters across the snapshot's
// segments.
func (s *Snapshot) Counters() (decoded, skips, faulted int64) {
	for _, seg := range s.g.segs {
		c := seg.idx.Counters()
		decoded += c.LoadPostingsDecoded()
		skips += c.LoadSkipsTaken()
		faulted += c.LoadBlocksFaulted()
	}
	return decoded, skips, faulted
}

// Search evaluates the term-string query against the snapshot: each
// segment runs the block-max MaxScore engine (exact, with the
// generation's global statistics), local ids are remapped through the
// segment base, and the per-segment answers merge with the bound
// administration of topk.MergeShards — the same scatter/gather contract
// the parallel layer uses for document-range shards, which is exactly
// what the segment chain is. It is SearchContext without cancellation.
func (s *Snapshot) Search(terms []string, n int) (Result, error) {
	return s.SearchContext(context.Background(), terms, n)
}

// SearchContext evaluates the query like Search, observing ctx: segment
// engines poll it at postings-block granularity, segments not yet
// launched when it fires are never scheduled, and one segment's failure
// cancels its siblings — a failed or abandoned query stops costing
// decode work across the whole chain instead of running every remaining
// segment to completion.
//
// Data faults are the exception to sibling cancellation: a segment
// whose pages cannot be read (or fail their checksums past the retry
// budget) is quarantined and skipped, the surviving segments complete,
// and the answer carries an explicitly degraded certificate naming the
// skipped segments — never a silent partial answer, never a failed
// query for damage confined to one segment.
func (s *Snapshot) SearchContext(ctx context.Context, terms []string, n int) (Result, error) {
	return s.searchIDs(ctx, s.resolve(terms), n)
}

// resolve maps term names to sorted, deduplicated term ids against the
// generation's frozen lexicon; unknown terms match nothing. The id list
// plus (generation, N) fully determines the answer, which is what makes
// it usable as a result-cache key.
func (s *Snapshot) resolve(terms []string) []lexicon.TermID {
	g := s.g
	seen := make(map[lexicon.TermID]bool, len(terms))
	ids := make([]lexicon.TermID, 0, len(terms))
	for _, t := range terms {
		id := g.lex.Lookup(t)
		if id == lexicon.InvalidTerm || seen[id] {
			continue
		}
		seen[id] = true
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	return ids
}

// searchIDs evaluates the resolved query — the shared back half of
// SearchContext and the cached search path.
func (s *Snapshot) searchIDs(ctx context.Context, ids []lexicon.TermID, n int) (Result, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.released {
		return Result{}, fmt.Errorf("live: search on a closed snapshot")
	}
	if n <= 0 {
		return Result{}, fmt.Errorf("live: N = %d must be positive", n)
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	g := s.g
	res := Result{Exact: true, Segments: len(g.segs), Generation: g.id}
	res.Cert = topk.Certificate{Exact: true, ShardsServed: len(g.segs), ShardsTotal: len(g.segs)}
	if len(ids) == 0 || len(g.segs) == 0 {
		return res, nil
	}
	// Calibration taps: bracket the evaluation with the snapshot's decode
	// and fault counters, and a span token. With concurrent searches the
	// deltas interleave (the counters are snapshot-wide), which is fine —
	// the calibrator's regression averages over many observations — and
	// in the deterministic bench (one worker) the deltas are exact.
	var tuneD0, tuneF0 int64
	var tuneTok tune.SpanToken
	if s.tn != nil {
		tuneD0, _, tuneF0 = s.Counters()
		tuneTok = s.tn.StartSpan()
	}
	q := collection.Query{Terms: ids}

	// One segment's failure cancels the siblings through this derived
	// context; ctx.Err() stays the caller's own signal. Data faults do
	// NOT cancel: the sick segment is quarantined and skipped while its
	// siblings run to completion.
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	tops := make([][]rank.DocScore, len(g.segs))
	errs := make([]error, len(g.segs))
	skipped := make([]bool, len(g.segs))
	searchSeg := func(i int) {
		if g.segs[i].quarantined.Load() {
			skipped[i] = true
			return
		}
		top, err := g.engines[i].SearchContext(sctx, q, n)
		if err != nil {
			if isDataFault(err) {
				// The media failed, not the query: quarantine the segment
				// (first classifier wins the count) and serve the
				// survivors under a degraded certificate.
				if g.segs[i].quarantine(err) && s.fc != nil {
					s.fc.quarantines.Add(1)
				}
				skipped[i] = true
				return
			}
			errs[i] = err
			cancel()
			return
		}
		base := g.segs[i].base
		for j := range top {
			top[j].DocID += base
		}
		tops[i] = top
	}
	if s.workers > 1 && len(g.segs) > 1 {
		var wg sync.WaitGroup
		sem := make(chan struct{}, s.workers)
		for i := range g.segs {
			if sctx.Err() != nil {
				errs[i] = sctx.Err()
				continue // stop scheduling: a sibling failed or the caller left
			}
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				searchSeg(i)
			}(i)
		}
		wg.Wait()
	} else {
		for i := range g.segs {
			if sctx.Err() != nil {
				errs[i] = sctx.Err()
				continue
			}
			searchSeg(i)
		}
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	// Prefer the root cause: a failing segment cancels its siblings,
	// whose own errors are then mere context noise.
	for _, err := range errs {
		if err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			return Result{}, err
		}
	}
	for _, err := range errs {
		if err != nil {
			return Result{}, err
		}
	}

	served := make([]topk.ShardTop, 0, len(g.segs))
	var skippedNames []string
	for i := range g.segs {
		if skipped[i] {
			skippedNames = append(skippedNames, g.segs[i].name)
			continue
		}
		// Each segment evaluated exactly (Bound 0). Truncated is
		// conservative: a full top list may have displaced candidates.
		served = append(served, topk.ShardTop{Top: tops[i], Truncated: len(tops[i]) == n})
	}
	res.Top, res.Cert = topk.MergeShardsPartial(served, n, skippedNames, len(g.segs))
	res.Exact = res.Cert.Exact
	res.Degraded = res.Cert.Degraded
	if res.Degraded && s.fc != nil {
		s.fc.degraded.Add(1)
	}
	if s.tn != nil {
		d1, _, f1 := s.Counters()
		if d1 >= tuneD0 && f1 >= tuneF0 {
			s.tn.ObserveQuery(len(ids), d1-tuneD0, f1-tuneF0, tuneTok)
		}
	}
	return res, nil
}

// Searcher is the query-side handle of a live index: every Search
// acquires the current generation, evaluates against that consistent
// snapshot, and releases it — the hot-swap contract that lets seals and
// merges commit mid-stream without ever invalidating an in-flight
// query. A Searcher is safe for concurrent use.
type Searcher struct {
	w *Writer
}

// Searcher returns the query-side handle of the writer's live index.
func (w *Writer) Searcher() *Searcher { return &Searcher{w: w} }

// Search evaluates one query against a fresh snapshot.
func (ls *Searcher) Search(terms []string, n int) (Result, error) {
	return ls.SearchContext(context.Background(), terms, n)
}

// SearchContext evaluates one query against a fresh snapshot, observing
// ctx as Snapshot.SearchContext does.
//
// With Config.ResultCacheBytes set, the query first consults the result
// cache under its (generation, N, resolved terms) key; a hit returns
// the byte-identical cached answer without touching a single postings
// block. On a miss, concurrent identical queries collapse into one
// singleflight: a leader runs the search under its own context while
// the rest wait for its answer — a waiter whose context fires abandons
// the wait without cancelling the leader, and a leader that fails (or
// whose context fires) wakes the waiters to run their own searches.
// Only exact, non-degraded answers enter the cache.
func (ls *Searcher) SearchContext(ctx context.Context, terms []string, n int) (Result, error) {
	snap, err := ls.w.Acquire()
	if err != nil {
		return Result{}, err
	}
	defer snap.Close()
	rc := ls.w.resCache
	if rc == nil || n <= 0 {
		return snap.SearchContext(ctx, terms, n)
	}
	ids := snap.resolve(terms)
	key := resultKey(snap.g.id, n, ids)
	if res, ok := rc.get(key); ok {
		return res, nil
	}
	f, leader := rc.join(key)
	if !leader {
		// The leader acquired a snapshot before joining, and the key pins
		// the generation, so its answer is computed over the very same
		// immutable view this query would read.
		select {
		case <-f.done:
			if f.err == nil {
				rc.shared.Add(1)
				return cloneResult(f.res), nil
			}
			// Leader failed or abandoned: its error may be private to its
			// own context (cancellation), so fall through and evaluate
			// under ours.
			return snap.searchIDs(ctx, ids, n)
		case <-ctx.Done():
			return Result{}, ctx.Err()
		}
	}
	defer rc.leave(key, f)
	res, err := snap.searchIDs(ctx, ids, n)
	f.res, f.err = res, err
	if err == nil && res.Exact && !res.Degraded {
		rc.put(key, res)
	}
	return res, err
}
