package live

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

// TestSearcherContextPreCancelled: a cancelled context is refused at
// the snapshot boundary, before any segment engine launches.
func TestSearcherContextPreCancelled(t *testing.T) {
	col := genCollection(t, 300, 11)
	queries := genQueries(t, col, 12)
	w, err := Open(Config{Dir: t.TempDir(), SealDocs: 60})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	streamInto(t, w, col)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ls := w.Searcher()
	if _, err := ls.SearchContext(ctx, queryNames(col, queries[0]), 10); !errors.Is(err, context.Canceled) {
		t.Errorf("Searcher: err = %v, want context.Canceled", err)
	}
	snap, err := w.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	if _, err := snap.SearchContext(ctx, queryNames(col, queries[0]), 10); !errors.Is(err, context.Canceled) {
		t.Errorf("Snapshot: err = %v, want context.Canceled", err)
	}
}

// TestSearcherContextMidSearchCancel stresses concurrent cancellation
// against multi-segment snapshot searches (run with -race): every
// outcome is the exact answer or context.Canceled, and the per-segment
// goroutines all unwind — cancellation must not leak workers or strand
// snapshot references (which would wedge Close).
func TestSearcherContextMidSearchCancel(t *testing.T) {
	col := genCollection(t, 600, 13)
	queries := genQueries(t, col, 14)
	// Small seal threshold: many segments, so every search fans out.
	w, err := Open(Config{Dir: t.TempDir(), SealDocs: 50})
	if err != nil {
		t.Fatal(err)
	}
	streamInto(t, w, col)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	ls := w.Searcher()
	before := runtime.NumGoroutine()

	const rounds = 50
	for i := 0; i < rounds; i++ {
		terms := queryNames(col, queries[i%len(queries)])
		want, err := ls.Search(terms, 10)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			time.Sleep(time.Duration(i%5) * 50 * time.Microsecond)
			cancel()
			close(done)
		}()
		res, err := ls.SearchContext(ctx, terms, 10)
		<-done
		if err != nil {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("round %d: err = %v, want context.Canceled", i, err)
			}
			continue
		}
		assertSameTop(t, "under concurrent cancel", res.Top, want.Top)
	}

	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after cancellation stress", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The stranded-reference check: Close must not hang on a snapshot a
	// cancelled search failed to release.
	closed := make(chan error, 1)
	go func() { closed <- w.Close() }()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung: a cancelled search leaked a snapshot reference")
	}
}
