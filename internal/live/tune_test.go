package live

import (
	"strings"
	"testing"
	"time"

	"repro/internal/rank"
	"repro/internal/tune"
)

// newTestTuner builds a deterministic tuner (modeled spans, every knob
// adaptive within test bounds) for the live integration tests.
func newTestTuner() *tune.Tuner {
	return tune.New(tune.Config{
		SpanModel:  &tune.SpanModel{DecodeCost: 100 * time.Nanosecond, FaultCost: 100 * time.Microsecond},
		SealDocs:   tune.Bounds{Min: 50, Max: 400},
		MergeFanIn: tune.Bounds{Min: 2, Max: 6},
		PoolPages:  tune.Bounds{Min: 32, Max: 128},
	})
}

// TestOpenRejectsNegativeKnobs: a negative MergeHorizon or PurgeDeadFrac
// must fail Open loudly instead of passing through fillDefaults (which
// only replaces exact zeros) and silently disabling merges or marking
// every segment purge-eligible. This test fails on the pre-fix code,
// where both values were accepted.
func TestOpenRejectsNegativeKnobs(t *testing.T) {
	if _, err := Open(Config{Dir: t.TempDir(), MergeHorizon: -1}); err == nil {
		t.Fatal("Open accepted MergeHorizon -1")
	} else if !strings.Contains(err.Error(), "MergeHorizon") {
		t.Fatalf("MergeHorizon error does not name the knob: %v", err)
	}
	if _, err := Open(Config{Dir: t.TempDir(), PurgeDeadFrac: -0.5}); err == nil {
		t.Fatal("Open accepted PurgeDeadFrac -0.5")
	} else if !strings.Contains(err.Error(), "PurgeDeadFrac") {
		t.Fatalf("PurgeDeadFrac error does not name the knob: %v", err)
	}
}

// runTunedWorkload streams a churny deterministic workload through one
// writer configuration — adds, interleaved queries, deletes, a final
// flush and merge-to-fixpoint — and returns the query answers plus the
// writer for further inspection. Callers own Close.
func runTunedWorkload(t *testing.T, tn *tune.Tuner) (*Writer, [][]rank.DocScore) {
	t.Helper()
	col := genCollection(t, 900, 7)
	queries := genQueries(t, col, 8)
	w, err := Open(Config{
		Dir:        t.TempDir(),
		SealDocs:   100,
		MergeFanIn: 3,
		Workers:    1,
		Tune:       tn,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := w.Searcher()
	qi := 0
	for i := range col.Docs {
		if _, err := w.Add(docTerms(col, &col.Docs[i])); err != nil {
			t.Fatal(err)
		}
		// Interleave queries so the tuner observes a mixed stream while
		// the index is still fragmenting.
		if i%40 == 39 {
			q := queries[qi%len(queries)]
			qi++
			if _, err := s.Search(queryNames(col, q), 10); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// Tombstone a deterministic slice so purge candidates exist.
	for id := uint32(0); id < 300; id += 3 {
		if err := w.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.MergeAll(); err != nil {
		t.Fatal(err)
	}
	var tops [][]rank.DocScore
	for _, q := range queries {
		res, err := s.Search(queryNames(col, q), 10)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Exact || res.Degraded {
			t.Fatalf("healthy tuned search not exact: %+v", res.Cert)
		}
		tops = append(tops, res.Top)
	}
	return w, tops
}

// TestTunedDeterminismAndEquivalence: two tuned runs over the same
// workload agree exactly — decision digest, decision count, segment
// layout — and both answer every query byte-identically to the static
// (untuned) policy over the same documents. Adaptivity changes when and
// what gets merged, never what a query returns.
func TestTunedDeterminismAndEquivalence(t *testing.T) {
	wa, topsA := runTunedWorkload(t, newTestTuner())
	defer wa.Close()
	wb, topsB := runTunedWorkload(t, newTestTuner())
	defer wb.Close()
	ws, topsS := runTunedWorkload(t, nil)
	defer ws.Close()

	da, db := wa.cfg.Tune.DecisionDigest(), wb.cfg.Tune.DecisionDigest()
	if da != db {
		t.Fatalf("same workload, different decision digests: %d vs %d", da, db)
	}
	sa, sb := wa.TuneStats(), wb.TuneStats()
	if !sa.Enabled || sa.Decisions == 0 {
		t.Fatalf("tuner recorded nothing: %+v", sa)
	}
	if sa.Decisions != sb.Decisions || sa.Queries != sb.Queries || sa.Merges != sb.Merges {
		t.Fatalf("tuned runs diverged: %+v vs %+v", sa, sb)
	}
	if wa.Stats().Segments != wb.Stats().Segments || wa.Stats().Merges != wb.Stats().Merges {
		t.Fatalf("tuned runs built different layouts: %+v vs %+v", wa.Stats(), wb.Stats())
	}
	if ws.TuneStats().Enabled {
		t.Fatal("static run reports an enabled tuner")
	}
	for i := range topsA {
		assertSameTop(t, "tuned run A vs B", topsA[i], topsB[i])
		assertSameTop(t, "tuned vs static", topsA[i], topsS[i])
	}

	// The maintenance-work account must be live on every configuration:
	// seals write pages regardless of policy.
	for _, w := range []*Writer{wa, ws} {
		ms := w.MaintStats()
		if ms.SealPagesWritten == 0 {
			t.Fatalf("no seal pages accounted: %+v", ms)
		}
		if w.Stats().Merges > 0 && (ms.MergePagesRead == 0 || ms.MergePagesWritten == 0 || ms.MergeReencoded == 0) {
			t.Fatalf("merges ran but the work account is empty: %+v", ms)
		}
	}
}

// TestTunedKnobsReachLive: a write-only stream must drive the adaptive
// seal threshold to its bound — observable as fewer, larger segments
// than the static base produces — while a purge decision appears in the
// log once tombstones pile up.
func TestTunedKnobsReachLive(t *testing.T) {
	col := genCollection(t, 800, 11)
	open := func(tn *tune.Tuner) *Writer {
		w, err := Open(Config{Dir: t.TempDir(), SealDocs: 100, MergeFanIn: 3, Workers: 1, Tune: tn})
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	tn := tune.New(tune.Config{
		SpanModel: &tune.SpanModel{DecodeCost: 100 * time.Nanosecond, FaultCost: 100 * time.Microsecond},
		SealDocs:  tune.Bounds{Min: 50, Max: 400},
	})
	wt, wsN := open(tn), open(nil)
	defer wt.Close()
	defer wsN.Close()
	streamInto(t, wt, col)
	for i := range col.Docs {
		if _, err := wsN.Add(docTerms(col, &col.Docs[i])); err != nil {
			t.Fatal(err)
		}
	}
	if err := wt.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := wsN.Flush(); err != nil {
		t.Fatal(err)
	}
	st, ss := wt.Stats(), wsN.Stats()
	if st.Seals >= ss.Seals {
		t.Fatalf("write-heavy tuner sealed %d times, static %d — the raised threshold must reduce seals", st.Seals, ss.Seals)
	}
	if got := wt.TuneStats().SealDocs; got != 400 {
		t.Fatalf("write-only stream left SealDocs at %d, want the bound 400", got)
	}
}
