package live

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"repro/internal/collection"
	"repro/internal/index"
	"repro/internal/lexicon"
	"repro/internal/storage"
)

// DocTermsFile is the name of the forward-index sidecar inside a
// segment directory: one compact (term, tf) list per local document id.
// It exists for the delete path — Delete(id) must subtract exactly the
// dead document's term statistics from the searchable view, and on
// reopen the tombstone ledger is rebuilt by reading the entries of every
// dead document. Entries are retained across merges even for purged
// documents (their statistics stay subtractable forever); documents
// deleted while still buffered are sealed as empty entries, because
// their statistics never entered any persisted snapshot and so must
// never be subtracted from one.
const DocTermsFile = "docterms.fwd"

var fwdMagic = [8]byte{'T', 'O', 'P', 'N', 'F', 'W', 'D', '1'}

// encodeDocEntry serializes one document's sorted term list: the first
// term id raw, then ascending deltas, each followed by its tf.
func encodeDocEntry(terms []collection.TermFreq) []byte {
	if len(terms) == 0 {
		return nil
	}
	buf := make([]byte, 0, 2*len(terms))
	prev := uint64(0)
	for i, tf := range terms {
		v := uint64(tf.Term)
		if i > 0 {
			v = v - prev - 1 // strictly ascending: delta-1 packs tighter
		}
		buf = binary.AppendUvarint(buf, v)
		buf = binary.AppendUvarint(buf, uint64(tf.TF))
		prev = uint64(tf.Term)
	}
	return buf
}

// decodeDocEntry is the inverse of encodeDocEntry.
func decodeDocEntry(blob []byte) ([]collection.TermFreq, error) {
	var out []collection.TermFreq
	prev := uint64(0)
	for pos := 0; pos < len(blob); {
		v, n := binary.Uvarint(blob[pos:])
		if n <= 0 {
			return nil, fmt.Errorf("live: corrupt docterms entry at byte %d", pos)
		}
		pos += n
		tf, n := binary.Uvarint(blob[pos:])
		if n <= 0 || tf == 0 || tf > 1<<31-1 {
			return nil, fmt.Errorf("live: corrupt docterms entry at byte %d", pos)
		}
		pos += n
		term := v
		if len(out) > 0 {
			term = prev + 1 + v
		}
		if term > uint64(^uint32(0)) {
			return nil, fmt.Errorf("live: docterms term id overflow")
		}
		out = append(out, collection.TermFreq{Term: lexicon.TermID(term), TF: int32(tf)})
		prev = term
	}
	return out, nil
}

// writeDocTerms persists one raw blob per local document id durably
// under dir. Layout: magic, u32 count, (count+1) little-endian u64
// offsets into the blob region, the blobs, and a trailing CRC-32 over
// everything before it.
func writeDocTerms(dir string, blobs [][]byte) error {
	var buf []byte
	buf = append(buf, fwdMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(blobs)))
	var off uint64
	for _, b := range blobs {
		buf = binary.LittleEndian.AppendUint64(buf, off)
		off += uint64(len(b))
	}
	buf = binary.LittleEndian.AppendUint64(buf, off)
	for _, b := range blobs {
		buf = append(buf, b...)
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	if err := storage.AtomicWriteFile(filepath.Join(dir, DocTermsFile), buf); err != nil {
		return fmt.Errorf("live: write docterms: %w", err)
	}
	return nil
}

// rebuildFwdSidecar writes dir's forward sidecar from the segment's
// inverted lists — the upgrade path for segments persisted before the
// delete path existed. Walking terms in ascending id order appends each
// document's terms already sorted, exactly the order encodeDocEntry
// expects.
func rebuildFwdSidecar(dir string, idx *index.Index) error {
	perDoc := make([][]collection.TermFreq, idx.Stats.NumDocs)
	for t := 0; t < idx.Lex.Size(); t++ {
		ps, err := idx.Postings(lexicon.TermID(t))
		if err != nil {
			return fmt.Errorf("live: rebuild docterms: %w", err)
		}
		for _, p := range ps {
			if int(p.DocID) >= len(perDoc) {
				return fmt.Errorf("live: rebuild docterms: posting doc %d outside %d-doc segment",
					p.DocID, len(perDoc))
			}
			perDoc[p.DocID] = append(perDoc[p.DocID], collection.TermFreq{
				Term: lexicon.TermID(t), TF: int32(p.TF),
			})
		}
	}
	blobs := make([][]byte, len(perDoc))
	for i, terms := range perDoc {
		blobs[i] = encodeDocEntry(terms)
	}
	return writeDocTerms(dir, blobs)
}

// docTerms is the read handle of a segment's forward sidecar: the
// offset table stays resident, entries are read on demand.
type fwdSidecar struct {
	f        *os.File
	offs     []uint64
	blobBase int64
}

// openDocTerms opens and verifies dir's sidecar, which must cover
// exactly wantDocs documents.
func openDocTerms(dir string, wantDocs int) (*fwdSidecar, error) {
	path := filepath.Join(dir, DocTermsFile)
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("live: open docterms: %w", err)
	}
	ok := false
	defer func() {
		if !ok {
			f.Close()
		}
	}()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("live: open docterms: %w", err)
	}
	size := st.Size()
	if size < int64(12+8+4) {
		return nil, fmt.Errorf("live: docterms %s truncated (%d bytes): corrupt", path, size)
	}
	// One streaming pass verifies the checksum up front, so a flipped
	// bit fails the open instead of surfacing as a wrong ledger. The CRC
	// covers everything before itself.
	crc := crc32.NewIEEE()
	if _, err := io.CopyN(crc, f, size-4); err != nil {
		return nil, fmt.Errorf("live: open docterms: %w", err)
	}
	var tail [4]byte
	if _, err := f.ReadAt(tail[:], size-4); err != nil {
		return nil, fmt.Errorf("live: open docterms: %w", err)
	}
	if crc.Sum32() != binary.LittleEndian.Uint32(tail[:]) {
		return nil, fmt.Errorf("live: docterms %s fails its checksum: corrupt", path)
	}

	head := make([]byte, 12)
	if _, err := f.ReadAt(head, 0); err != nil {
		return nil, fmt.Errorf("live: open docterms: %w", err)
	}
	if string(head[:8]) != string(fwdMagic[:]) {
		return nil, fmt.Errorf("live: %s is not a docterms sidecar (corrupt?)", path)
	}
	count := int(binary.LittleEndian.Uint32(head[8:12]))
	if count != wantDocs {
		return nil, fmt.Errorf("live: docterms %s covers %d documents, segment holds %d: corrupt",
			path, count, wantDocs)
	}
	offBytes := make([]byte, 8*(count+1))
	if _, err := f.ReadAt(offBytes, 12); err != nil {
		return nil, fmt.Errorf("live: open docterms: %w", err)
	}
	d := &fwdSidecar{f: f, offs: make([]uint64, count+1), blobBase: int64(12 + 8*(count+1))}
	prev := uint64(0)
	for i := range d.offs {
		d.offs[i] = binary.LittleEndian.Uint64(offBytes[8*i:])
		if d.offs[i] < prev || d.blobBase+int64(d.offs[i]) > size-4 {
			return nil, fmt.Errorf("live: docterms %s offset table out of order or range: corrupt", path)
		}
		prev = d.offs[i]
	}
	ok = true
	return d, nil
}

// raw returns the undecoded entry blob of local document id (nil for
// empty entries).
func (d *fwdSidecar) raw(local uint32) ([]byte, error) {
	if int(local) >= len(d.offs)-1 {
		return nil, fmt.Errorf("live: docterms entry %d out of range", local)
	}
	lo, hi := d.offs[local], d.offs[local+1]
	if lo == hi {
		return nil, nil
	}
	blob := make([]byte, hi-lo)
	if _, err := d.f.ReadAt(blob, d.blobBase+int64(lo)); err != nil {
		return nil, fmt.Errorf("live: docterms entry %d: %w", local, err)
	}
	return blob, nil
}

// terms returns the decoded term list of local document id.
func (d *fwdSidecar) terms(local uint32) ([]collection.TermFreq, error) {
	blob, err := d.raw(local)
	if err != nil || blob == nil {
		return nil, err
	}
	return decodeDocEntry(blob)
}

func (d *fwdSidecar) close() error {
	if d.f == nil {
		return nil
	}
	err := d.f.Close()
	d.f = nil
	return err
}
