package live

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestResultCacheHitEquivalence: repeating a query must hit the result
// cache and return the byte-identical answer — Top, certificate,
// generation, everything.
func TestResultCacheHitEquivalence(t *testing.T) {
	col := genCollection(t, 600, 41)
	queries := genQueries(t, col, 42)
	w, err := Open(Config{
		Dir: t.TempDir(), SealDocs: 200,
		ResultCacheBytes: 1 << 20, BlockCacheBytes: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	streamInto(t, w, col)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	s := w.Searcher()

	first := make([]Result, len(queries))
	for i, q := range queries {
		first[i], err = s.Search(queryNames(col, q), 10)
		if err != nil {
			t.Fatal(err)
		}
	}
	cs := w.CacheStats()
	if cs.ResultHits != 0 {
		t.Fatalf("cold pass scored %d result hits, want 0", cs.ResultHits)
	}
	if cs.ResultEntries == 0 {
		t.Fatal("cold pass cached nothing")
	}
	for i, q := range queries {
		res, err := s.Search(queryNames(col, q), 10)
		if err != nil {
			t.Fatal(err)
		}
		assertSameTop(t, "cached answer", res.Top, first[i].Top)
		if res.Exact != first[i].Exact || res.Degraded != first[i].Degraded ||
			res.Generation != first[i].Generation || res.Segments != first[i].Segments {
			t.Fatalf("cached result %+v differs from first %+v", res, first[i])
		}
	}
	cs = w.CacheStats()
	if cs.ResultHits != int64(len(queries)) {
		t.Fatalf("warm pass scored %d result hits, want %d", cs.ResultHits, len(queries))
	}

	// A different N is a different key — never served from the N=10
	// entries.
	res, err := s.Search(queryNames(col, queries[0]), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Top) != 5 {
		t.Fatalf("N=5 answer has %d results (stale N=10 entry served?)", len(res.Top))
	}
}

// TestResultCacheInvalidationOnCommit: a delete committing must move
// the generation and with it every cached answer — a query whose cached
// top document is deleted must never see it again.
func TestResultCacheInvalidationOnCommit(t *testing.T) {
	col := genCollection(t, 600, 43)
	queries := genQueries(t, col, 44)
	w, err := Open(Config{
		Dir: t.TempDir(), SealDocs: 200, ResultCacheBytes: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	streamInto(t, w, col)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	s := w.Searcher()
	names := queryNames(col, queries[0])

	res, err := s.Search(names, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Top) == 0 {
		t.Fatal("query matched nothing; pick a different seed")
	}
	// Warm the cache, then kill the answer's best document.
	if _, err := s.Search(names, 10); err != nil {
		t.Fatal(err)
	}
	victim := res.Top[0].DocID
	if err := w.Delete(victim); err != nil {
		t.Fatal(err)
	}
	after, err := s.Search(names, 10)
	if err != nil {
		t.Fatal(err)
	}
	if after.Generation == res.Generation {
		t.Fatal("delete committed without moving the generation")
	}
	for _, ds := range after.Top {
		if ds.DocID == victim {
			t.Fatalf("deleted document %d served from a stale cached answer", victim)
		}
	}
}

// TestResultCacheDegradedNeverCached: answers produced while a segment
// is quarantined must not enter the cache — once the segment heals, the
// same query must get the exact answer again, not a replayed degraded
// one (re-verification does not move the generation, so a cached
// degraded answer would genuinely be served forever).
func TestResultCacheDegradedNeverCached(t *testing.T) {
	const half = 4000
	col := genCollection(t, 2*half, 71)
	queries := genQueries(t, col, 72)
	reg := newDevRegistry()
	w, err := Open(Config{
		Dir: t.TempDir(), SealDocs: half, PoolPages: 8, WrapDevice: reg.wrap,
		ResultCacheBytes: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	streamInto(t, w, col)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	s := w.Searcher()
	names := queryNames(col, queries[0])
	baseline, err := s.Search(names, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !baseline.Exact || baseline.Degraded {
		t.Fatalf("fault-free baseline not exact: %+v", baseline.Cert)
	}

	sick := reg.names[1]
	reg.dev(sick).FailAll(true)
	w.resCache.clear() // drop the baseline entry so the query re-evaluates
	deg, err := s.Search(names, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !deg.Degraded {
		t.Skip("query never touched the failing segment; no degraded surface")
	}
	if entries := w.CacheStats().ResultEntries; entries != 0 {
		t.Fatalf("degraded answer entered the result cache (%d entries)", entries)
	}

	reg.dev(sick).Clear()
	if n := w.Reverify(); n != 1 {
		t.Fatalf("Reverify recovered %d segments, want 1", n)
	}
	healed, err := s.Search(names, 10)
	if err != nil {
		t.Fatal(err)
	}
	if healed.Degraded || !healed.Exact {
		t.Fatalf("healed query still degraded: %+v (cached degraded answer?)", healed.Cert)
	}
	assertSameTop(t, "healed vs baseline", healed.Top, baseline.Top)
}

// TestSingleflightProtocol drives the flight table directly: a waiter
// blocked on a leader's flight gets the leader's answer; an abandoned
// flight (leader failed) wakes waiters empty-handed.
func TestSingleflightProtocol(t *testing.T) {
	rc := newResultCache(1 << 20)
	f, leader := rc.join("k")
	if !leader {
		t.Fatal("first join must lead")
	}
	f2, leader2 := rc.join("k")
	if leader2 || f2 != f {
		t.Fatal("second join must wait on the leader's flight")
	}
	got := make(chan Result, 1)
	go func() {
		<-f2.done
		if f2.err != nil {
			got <- Result{}
			return
		}
		got <- f2.res
	}()
	f.res, f.err = Result{Segments: 7}, nil
	rc.leave("k", f)
	if r := <-got; r.Segments != 7 {
		t.Fatalf("waiter got %+v, want the leader's answer", r)
	}

	// Abandoned flight: the pre-set error survives to the waiters.
	f, _ = rc.join("k2")
	done := make(chan error, 1)
	go func() {
		<-f.done
		done <- f.err
	}()
	rc.leave("k2", f) // leader never assigned res/err
	if err := <-done; !errors.Is(err, errFlightAbandoned) {
		t.Fatalf("abandoned flight delivered %v, want errFlightAbandoned", err)
	}
	if _, leader := rc.join("k2"); !leader {
		t.Fatal("retired flight must not linger in the table")
	}
}

// TestSingleflightLeaderCancellation: a leader whose context fires
// returns its own ctx error without caching, a waiter parked on a
// flight honors its own context without cancelling the leader, and a
// waiter woken by an abandoned flight falls back to its own search and
// still gets the right answer.
func TestSingleflightLeaderCancellation(t *testing.T) {
	col := genCollection(t, 600, 45)
	queries := genQueries(t, col, 46)
	w, err := Open(Config{
		Dir: t.TempDir(), SealDocs: 1 << 20, ResultCacheBytes: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	streamInto(t, w, col)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	s := w.Searcher()
	names := queryNames(col, queries[0])
	want, err := s.Search(names, 10)
	if err != nil {
		t.Fatal(err)
	}
	w.resCache.clear()

	// Leader with a dead context: the query fails with its own ctx
	// error, the flight is retired, and nothing poisons later queries.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.SearchContext(ctx, names, 10); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled leader returned %v, want context.Canceled", err)
	}
	res, err := s.Search(names, 10)
	if err != nil {
		t.Fatal(err)
	}
	assertSameTop(t, "after cancelled leader", res.Top, want.Top)
	w.resCache.clear()

	// Park a waiter on a fake leader's flight, then cancel the waiter:
	// it must return its own ctx error promptly, leaving the flight (and
	// its leader) untouched.
	snap, err := w.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	key := resultKey(snap.g.id, 10, snap.resolve(names))
	snap.Close()
	f, leader := w.resCache.join(key)
	if !leader {
		t.Fatal("test flight must lead")
	}
	wctx, wcancel := context.WithCancel(context.Background())
	waiterErr := make(chan error, 1)
	go func() {
		_, err := s.SearchContext(wctx, names, 10)
		waiterErr <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the waiter park on the flight
	wcancel()
	select {
	case err := <-waiterErr:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled waiter returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled waiter never returned — it is waiting out the leader")
	}

	// Park another waiter, then abandon the flight: the waiter falls
	// back to its own search and still answers correctly.
	waiterRes := make(chan Result, 1)
	go func() {
		res, err := s.SearchContext(context.Background(), names, 10)
		if err != nil {
			t.Error(err)
			waiterRes <- Result{}
			return
		}
		waiterRes <- res
	}()
	time.Sleep(20 * time.Millisecond)
	w.resCache.leave(key, f) // f.err is still errFlightAbandoned
	res = <-waiterRes
	assertSameTop(t, "fallback after abandoned flight", res.Top, want.Top)
}

// TestCacheChurnEquivalence drives an identical churn — adds, deletes,
// flushes, merges — through a cache-on and a cache-off writer while
// background goroutines hammer the cache-on searcher, then asserts the
// two ends answer every query byte-identically. Run under -race this is
// the caches' concurrency certificate.
func TestCacheChurnEquivalence(t *testing.T) {
	col := genCollection(t, 700, 47)
	queries := genQueries(t, col, 48)
	on, err := Open(Config{
		Dir: t.TempDir(), SealDocs: 120, MergeFanIn: 3,
		ResultCacheBytes: 1 << 20, BlockCacheBytes: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer on.Close()
	off, err := Open(Config{Dir: t.TempDir(), SealDocs: 120, MergeFanIn: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer off.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := on.Searcher()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := queries[(g+i)%len(queries)]
				if _, err := s.Search(queryNames(col, q), 10); err != nil {
					t.Errorf("churn search: %v", err)
					return
				}
			}
		}(g)
	}

	rng := rand.New(rand.NewSource(0xcafe))
	alive := make([]uint32, 0, len(col.Docs))
	for i := range col.Docs {
		terms := docTerms(col, &col.Docs[i])
		idOn, err := on.Add(terms)
		if err != nil {
			t.Fatal(err)
		}
		idOff, err := off.Add(terms)
		if err != nil {
			t.Fatal(err)
		}
		if idOn != idOff {
			t.Fatalf("writers diverged: ids %d vs %d", idOn, idOff)
		}
		alive = append(alive, idOn)
		switch {
		case len(alive) > 20 && rng.Intn(5) == 0:
			v := rng.Intn(len(alive))
			id := alive[v]
			alive = append(alive[:v], alive[v+1:]...)
			if err := on.Delete(id); err != nil {
				t.Fatal(err)
			}
			if err := off.Delete(id); err != nil {
				t.Fatal(err)
			}
		case rng.Intn(40) == 0:
			if err := on.Flush(); err != nil {
				t.Fatal(err)
			}
			if err := off.Flush(); err != nil {
				t.Fatal(err)
			}
			if rng.Intn(2) == 0 {
				if err := on.MergeAll(); err != nil {
					t.Fatal(err)
				}
				if err := off.MergeAll(); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	close(stop)
	wg.Wait()
	if err := on.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := off.Flush(); err != nil {
		t.Fatal(err)
	}

	sOn, sOff := on.Searcher(), off.Searcher()
	for i, q := range queries {
		names := queryNames(col, q)
		for pass := 0; pass < 2; pass++ { // second pass hits the result cache
			resOn, err := sOn.Search(names, 10)
			if err != nil {
				t.Fatal(err)
			}
			resOff, err := sOff.Search(names, 10)
			if err != nil {
				t.Fatal(err)
			}
			assertSameTop(t, "cache-on vs cache-off", resOn.Top, resOff.Top)
			if !resOn.Exact || resOn.Degraded {
				t.Fatalf("query %d pass %d lost its certificate: %+v", i, pass, resOn.Cert)
			}
		}
	}
	cs := on.CacheStats()
	if cs.ResultHits == 0 {
		t.Fatal("equivalence passes never hit the result cache")
	}
	if cs.BlockHits == 0 {
		t.Fatal("churn never hit the block cache")
	}
}

// TestBlockCacheReducesFaults: with the result cache off and the block
// cache on, replaying a query must serve its postings blocks from the
// cache — zero new block faults — while still decoding them (the cache
// sits under the decoder, not over the answer).
func TestBlockCacheReducesFaults(t *testing.T) {
	col := genCollection(t, 2000, 49)
	queries := genQueries(t, col, 50)
	w, err := Open(Config{
		Dir: t.TempDir(), SealDocs: 1 << 20, PoolPages: 8,
		BlockCacheBytes: 8 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	streamInto(t, w, col)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	snap, err := w.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	for _, q := range queries {
		if _, err := snap.Search(queryNames(col, q), 10); err != nil {
			t.Fatal(err)
		}
	}
	decoded0, _, faulted0 := snap.Counters()
	if faulted0 == 0 {
		t.Fatal("cold pass never faulted a block; the test surface is gone")
	}
	for _, q := range queries {
		if _, err := snap.Search(queryNames(col, q), 10); err != nil {
			t.Fatal(err)
		}
	}
	decoded1, _, faulted1 := snap.Counters()
	if faulted1 != faulted0 {
		t.Fatalf("warm pass faulted %d new blocks, want 0 (cold %d)", faulted1-faulted0, faulted0)
	}
	if decoded1 == decoded0 {
		t.Fatal("warm pass decoded nothing — results cannot have been computed")
	}
	cs := w.CacheStats()
	if cs.BlockHits == 0 || cs.BlockAdmits == 0 {
		t.Fatalf("block cache never used: %+v", cs)
	}
}
