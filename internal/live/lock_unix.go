//go:build unix

package live

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// lockFileName is the advisory inter-process lock inside a live
// directory (not seg-* prefixed, so GC never touches it).
const lockFileName = "live.lock"

// lockDir takes the exclusive advisory flock on dir. The kernel
// releases it on process death, so a crash never wedges the directory.
func lockDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, lockFileName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("live: lock: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("live: %s is already in use by another process: %w", dir, err)
	}
	return f, nil
}
