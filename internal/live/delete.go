package live

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/index"
	"repro/internal/postings"
)

// ErrNotFound is returned by Delete and Update for a document id that
// was never assigned or is already deleted.
var ErrNotFound = errors.New("live: no such live document")

// Delete tombstones document id. For a sealed document the tombstone is
// durable before Delete returns: a new alive-bitmap version is written
// next to the document's segment and the manifest referencing it is
// swapped atomically — crash on either side of the swap leaves a
// consistent state (the bitmap file alone is garbage-collected on
// reopen; the swapped manifest alone is the committed delete). A new
// searchable generation is installed with the document filtered out and
// its exact term statistics subtracted, so later searches rank as if
// the document had never been added — while snapshots acquired before
// the delete keep their view (a delete committed mid-query is invisible
// to in-flight searches). For a still-buffered document the delete is
// memory-only, matching the document's own seal-grained durability.
//
// Deleting an unknown or already-deleted id fails with ErrNotFound and
// changes nothing. The document's postings remain on disk until a merge
// or purge rewrite reclaims them; until then every bound they inflate
// is still a valid upper bound.
//
// Cost: a sealed-document delete is commit-grained — one lexicon clone
// (the tightened snapshot is copy-on-write because generations share
// it), one fsync'd bitmap write, one fsync'd manifest swap, and a
// generation install, all under the writer lock. That is the price of
// per-document durability and immediate visibility; workloads deleting
// in bulk amortize only the seal today. Group-committed tombstone
// batches are the known follow-up if churn-bound ingest ever dominates.
func (w *Writer) Delete(id uint32) error {
	if w.cfg.Follower {
		return ErrReadOnly
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.deleteLocked(id)
}

// deleteLocked dispatches a delete to the buffered or sealed path,
// first waiting out an in-flight seal that holds the document (it is
// in neither the buffer nor any segment while the build runs).
func (w *Writer) deleteLocked(id uint32) error {
	for {
		if w.closed {
			return ErrClosed
		}
		if w.failed != nil {
			return w.failed
		}
		if w.sealing && id >= w.sealLo && id < w.sealHi {
			w.cond.Wait()
			continue
		}
		break
	}
	var err error
	if id >= w.base {
		err = w.deleteBufferedLocked(id)
	} else {
		err = w.deleteSealedLocked(id)
	}
	if err == nil {
		w.cfg.Tune.ObserveDelete() // nil-safe
	}
	return err
}

// deleteBufferedLocked removes a never-sealed document: its statistics
// are un-recorded from the master lexicon (they never reached any
// persisted snapshot, so the tombstone ledger must not know them) and
// its buffer slot becomes a hole that seals as an empty document.
func (w *Writer) deleteBufferedLocked(id uint32) error {
	local := int(id - w.base)
	if local >= len(w.buf) {
		return fmt.Errorf("%w: id %d was never assigned", ErrNotFound, id)
	}
	d := &w.buf[local]
	if len(d.Terms) == 0 {
		return fmt.Errorf("%w: id %d", ErrNotFound, id)
	}
	for _, tf := range d.Terms {
		if err := w.lex.Unrecord(tf.Term, int(tf.TF)); err != nil {
			// Unrecording exactly what Add recorded cannot underflow; an
			// error here means corrupted in-memory state.
			w.failed = err
			return err
		}
	}
	w.bufTokens -= int64(d.Len)
	d.Terms = nil
	d.Len = 0
	w.bufDead++
	w.docsDeleted++
	return nil
}

// deleteSealedLocked tombstones a sealed document: clone-and-kill the
// segment's alive bitmap, persist the new version, fold the document's
// term statistics into the tombstone ledger, and commit (manifest swap
// + generation install).
func (w *Writer) deleteSealedLocked(id uint32) error {
	seg := w.segOfLocked(id)
	if seg == nil {
		return fmt.Errorf("%w: id %d has no segment", ErrNotFound, id)
	}
	local := id - seg.base
	if seg.alive != nil && !seg.alive.Alive(local) {
		return fmt.Errorf("%w: id %d", ErrNotFound, id)
	}
	terms, err := seg.fwd.terms(local)
	if err != nil {
		if w.failed == nil {
			w.failed = err // a corrupt sidecar poisons: the ledger would drift
		}
		return err
	}
	if len(terms) == 0 {
		return fmt.Errorf("%w: id %d", ErrNotFound, id) // an id hole
	}

	bm := seg.alive
	if bm == nil {
		bm = postings.NewAliveBitmap(seg.docs)
	} else {
		bm = bm.Clone()
	}
	bm.Kill(local)
	ver := seg.aliveVer + 1
	if err := index.WriteAlive(filepath.Join(seg.dir, aliveName(ver)), bm); err != nil {
		return err // nothing mutated yet: the failed write is retryable
	}
	if cerr := w.crash(CrashDeleteBeforeCommit); cerr != nil {
		// Simulated death with the new bitmap version on disk but no
		// manifest referencing it: the delete never happened; reopen GCs
		// the orphaned version file.
		w.failed = cerr
		return cerr
	}
	// The incremental half of the tightened-snapshot maintenance: clone
	// the current tight clone and subtract just this document's terms —
	// O(vocabulary) for the clone, not O(ledger) — while the ledger
	// itself (used for rebuilds at seal and reopen) accumulates the same
	// delta. The clone happens before any state mutation so a failure
	// leaves the writer consistent.
	tight := w.tight.Clone()
	for _, tf := range terms {
		if err := tight.Unrecord(tf.Term, int(tf.TF)); err != nil {
			if w.failed == nil {
				w.failed = fmt.Errorf("live: tombstone ledger: %w", err)
			}
			return w.failed
		}
	}

	oldVer := seg.aliveVer
	seg.alive = bm
	seg.aliveVer = ver
	dl := seg.idx.Stats.DocLen(local)
	seg.aliveDocs--
	seg.aliveTokens -= int64(dl)
	if dl > 0 {
		seg.purgeable++
	}
	for _, tf := range terms {
		w.deadStats[tf.Term] = addStat(w.deadStats[tf.Term], 1, int64(tf.TF))
	}
	w.tight = tight
	w.docsDeleted++
	if err := w.commitLocked(); err != nil {
		if w.failed == nil {
			w.failed = err
		}
		return err
	}
	if cerr := w.crash(CrashDeleteAfterCommit); cerr != nil {
		// Simulated death after the swap: the delete is durable; the
		// superseded bitmap version stays for reopen's GC.
		w.failed = cerr
		return cerr
	}
	if oldVer > 0 {
		// Superseded version: best-effort delete; a leftover is
		// garbage-collected on the next Open.
		if rerr := os.Remove(filepath.Join(seg.dir, aliveName(oldVer))); rerr != nil {
			cleanupLogf("live: removing superseded bitmap of segment %s: %v (reopen GC will retry)", seg.name, rerr)
		}
	}
	if float64(seg.purgeable) >= w.cfg.PurgeDeadFrac*float64(seg.aliveDocs+seg.purgeable) {
		w.kickMerger()
	}
	return nil
}

// segOfLocked finds the segment whose id range contains global id.
func (w *Writer) segOfLocked(id uint32) *segment {
	i := sort.Search(len(w.segs), func(i int) bool {
		return w.segs[i].base > id
	})
	if i == 0 {
		return nil
	}
	s := w.segs[i-1]
	if id >= s.base+uint32(s.docs) {
		return nil
	}
	return s
}

// Update replaces document id with a new version of its content under
// one critical section: tombstone the old document, buffer the new one
// under a fresh global id (returned). The two halves follow their own
// visibility rules — the delete is searchable (and durable)
// immediately, the new version at its seal — so between commit and
// seal a search sees neither, exactly the state a crash would recover
// to. The replacement is validated (through the same normalization Add
// uses) before the original is touched: a malformed replacement fails
// with the old version intact, and if id does not name a live
// document, Update fails with ErrNotFound and adds nothing.
func (w *Writer) Update(id uint32, terms []TermCount) (uint32, error) {
	if w.cfg.Follower {
		return 0, ErrReadOnly
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return 0, ErrClosed
	}
	if w.failed != nil {
		err := w.failed
		w.mu.Unlock()
		return 0, err
	}
	doc, err := w.normalizeLocked(terms)
	if err != nil {
		w.mu.Unlock()
		return 0, err
	}
	if err := w.deleteLocked(id); err != nil {
		w.mu.Unlock()
		return 0, err
	}
	global, need, err := w.recordLocked(doc)
	w.mu.Unlock()
	if err != nil {
		return 0, err
	}
	if need {
		if err := w.Flush(); err != nil {
			return global, err
		}
	}
	return global, nil
}
