package live

import (
	"encoding/binary"
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/lexicon"
	"repro/internal/rank"
)

// resultCache memoizes whole search Results keyed by (generation, N,
// resolved query term ids). The generation in the key is what makes the
// cache trivially coherent: a commit installs a new generation, so every
// cached answer automatically stops matching — and installLocked clears
// the map wholesale to release the bytes too. Only exact, non-degraded
// answers are admitted; a degraded answer is a statement about a
// transient fault, not about the index, and must never outlive it.
//
// The cache is an 8-way sharded LRU with byte-size accounting, plus a
// singleflight table: concurrent identical queries elect one leader to
// run the search while the rest wait for its answer (or abandon the
// wait when their own context fires, without cancelling the leader).
type resultCache struct {
	hits   atomic.Int64
	misses atomic.Int64
	shared atomic.Int64 // answers served from another query's flight

	shards [rcShardCount]rcShard

	fmu     sync.Mutex
	flights map[string]*rcFlight
}

const rcShardCount = 8

// errFlightAbandoned is the pre-set flight error a leader overwrites on
// completion; waiters seeing it (leader panicked or errored) fall back
// to their own search.
var errFlightAbandoned = errors.New("live: result flight abandoned")

// rcFlight is one in-progress search other identical queries can wait
// on. res/err are written by the leader before done is closed.
type rcFlight struct {
	done chan struct{}
	res  Result
	err  error
}

type rcEntry struct {
	key        string
	res        Result
	size       int64
	prev, next *rcEntry
}

type rcShard struct {
	mu       sync.Mutex
	capacity int64
	bytes    int64
	entries  map[string]*rcEntry
	head     *rcEntry // most recent
	tail     *rcEntry // eviction candidate
}

// newResultCache returns a cache bounded at capacity bytes.
func newResultCache(capacity int64) *resultCache {
	rc := &resultCache{flights: make(map[string]*rcFlight)}
	per := capacity / rcShardCount
	if per < 1 {
		per = 1
	}
	for i := range rc.shards {
		rc.shards[i].capacity = per
		rc.shards[i].entries = make(map[string]*rcEntry)
	}
	return rc
}

// resultKey encodes the cache key for a resolved query: the generation
// id, the requested N, and the sorted, deduplicated term ids — exactly
// the inputs Snapshot.searchIDs answers from, so equal keys mean
// provably identical answers.
func resultKey(gen uint64, n int, ids []lexicon.TermID) string {
	b := make([]byte, 0, 20+4*len(ids))
	b = binary.AppendUvarint(b, gen)
	b = binary.AppendUvarint(b, uint64(n))
	for _, id := range ids {
		b = binary.AppendUvarint(b, uint64(id))
	}
	return string(b)
}

func rcHash(key string) uint64 {
	// FNV-1a.
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}

func (rc *resultCache) shard(key string) *rcShard {
	return &rc.shards[rcHash(key)&(rcShardCount-1)]
}

// resultSize approximates an entry's resident bytes.
func resultSize(key string, res Result) int64 {
	size := int64(len(key)) + 160 // struct + map/list overhead
	size += int64(cap(res.Top)) * 16
	for _, s := range res.Cert.Skipped {
		size += int64(len(s)) + 16
	}
	return size
}

// cloneResult deep-copies the slices a caller could mutate, so cached
// state is never aliased outside the cache.
func cloneResult(res Result) Result {
	out := res
	if res.Top != nil {
		out.Top = append([]rank.DocScore(nil), res.Top...)
	}
	if res.Cert.Skipped != nil {
		out.Cert.Skipped = append([]string(nil), res.Cert.Skipped...)
	}
	return out
}

// get returns the cached Result for key, counting a hit or miss.
func (rc *resultCache) get(key string) (Result, bool) {
	s := rc.shard(key)
	s.mu.Lock()
	e, ok := s.entries[key]
	if ok {
		s.moveFront(e)
	}
	var res Result
	if ok {
		res = cloneResult(e.res)
	}
	s.mu.Unlock()
	if !ok {
		rc.misses.Add(1)
		return Result{}, false
	}
	rc.hits.Add(1)
	return res, true
}

// put admits res under key, evicting least-recently-used entries until
// it fits. Oversized results (larger than a whole shard) are dropped.
func (rc *resultCache) put(key string, res Result) {
	res = cloneResult(res)
	size := resultSize(key, res)
	s := rc.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if size > s.capacity {
		return
	}
	if e, ok := s.entries[key]; ok {
		s.bytes += size - e.size
		e.res, e.size = res, size
		s.moveFront(e)
	} else {
		e := &rcEntry{key: key, res: res, size: size}
		s.entries[key] = e
		s.bytes += size
		s.pushFront(e)
	}
	for s.bytes > s.capacity && s.tail != nil {
		s.remove(s.tail)
	}
}

// clear drops every entry — the generation-swap invalidation.
func (rc *resultCache) clear() {
	for i := range rc.shards {
		s := &rc.shards[i]
		s.mu.Lock()
		s.entries = make(map[string]*rcEntry)
		s.head, s.tail, s.bytes = nil, nil, 0
		s.mu.Unlock()
	}
}

// stats samples the cache counters and current occupancy.
func (rc *resultCache) stats() (hits, misses, shared, bytes, entries int64) {
	hits = rc.hits.Load()
	misses = rc.misses.Load()
	shared = rc.shared.Load()
	for i := range rc.shards {
		s := &rc.shards[i]
		s.mu.Lock()
		bytes += s.bytes
		entries += int64(len(s.entries))
		s.mu.Unlock()
	}
	return hits, misses, shared, bytes, entries
}

// join enters the singleflight for key: the first caller becomes the
// leader (leader=true) and must call leave exactly once; later callers
// get the leader's flight to wait on.
func (rc *resultCache) join(key string) (*rcFlight, bool) {
	rc.fmu.Lock()
	defer rc.fmu.Unlock()
	if f, ok := rc.flights[key]; ok {
		return f, false
	}
	f := &rcFlight{done: make(chan struct{}), err: errFlightAbandoned}
	rc.flights[key] = f
	return f, true
}

// leave retires the leader's flight and wakes every waiter. The leader
// assigns f.res/f.err before calling; a panic on the search path leaves
// the pre-set errFlightAbandoned, which waiters treat as "run your own
// search".
func (rc *resultCache) leave(key string, f *rcFlight) {
	rc.fmu.Lock()
	delete(rc.flights, key)
	rc.fmu.Unlock()
	close(f.done)
}

// Intrusive LRU list plumbing; callers hold s.mu.

func (s *rcShard) pushFront(e *rcEntry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *rcShard) moveFront(e *rcEntry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}

func (s *rcShard) unlink(e *rcEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *rcShard) remove(e *rcEntry) {
	s.unlink(e)
	delete(s.entries, e.key)
	s.bytes -= e.size
}
