package live

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/rank"
	"repro/internal/storage"
)

// crashArm is the CrashHook of the matrix test: it fires at exactly one
// armed point and records that it did.
type crashArm struct {
	mu     sync.Mutex
	target CrashPoint
	fired  int
}

func (a *crashArm) hook(p CrashPoint) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.target != "" && p == a.target {
		a.fired++
		return true
	}
	return false
}

func (a *crashArm) arm(p CrashPoint) {
	a.mu.Lock()
	a.target = p
	a.mu.Unlock()
}

// assertDirConsistent asserts the on-disk directory matches its
// manifest after recovery: every segment directory is listed, and every
// alive-bitmap version inside one is exactly the version the manifest
// references — no uncommitted orphans, no stale versions.
func assertDirConsistent(t *testing.T, dir string) {
	t.Helper()
	m, err := readManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	listed := make(map[string]uint64, len(m.Segments))
	for _, ms := range m.Segments {
		listed[ms.Name] = ms.Tomb
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), "seg-") {
			continue
		}
		tomb, ok := listed[e.Name()]
		if !ok {
			t.Errorf("segment directory %s survives recovery but is not in the manifest", e.Name())
			continue
		}
		files, err := os.ReadDir(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range files {
			name := f.Name()
			if strings.HasPrefix(name, "alive-") && (tomb == 0 || name != aliveName(tomb)) {
				t.Errorf("segment %s holds stale bitmap version %s (manifest references %d)",
					e.Name(), name, tomb)
			}
		}
	}
}

// TestCrashPointMatrix drives every named crash point of the seal,
// merge, and delete commit protocols: build a churned base state, arm
// exactly one point, attempt the operation (which dies there), take a
// crash image of the directory, and reopen it. The recovered state must
// match the protocol's commit semantics exactly — an operation that
// crashed before its manifest swap never happened; one that crashed
// after it is fully durable — with results byte-identical to a fresh
// one-shot build over the surviving documents, no resurrected
// tombstones, and all uncommitted artifacts garbage-collected.
func TestCrashPointMatrix(t *testing.T) {
	for _, cp := range CrashPoints {
		t.Run(string(cp), func(t *testing.T) {
			col := genCollection(t, 330, 61)
			queries := genQueries(t, col, 62)
			liveDir := filepath.Join(t.TempDir(), "live")
			arm := &crashArm{}
			cfg := Config{Dir: liveDir, SealDocs: 60, MergeFanIn: 3, CrashHook: arm.hook}
			w, err := Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer w.Close()

			// Base state: 300 sealed documents in 5 segments, 20 committed
			// tombstones, empty buffer.
			st := newChurnState()
			for i := 0; i < 300; i++ {
				id, err := w.Add(docTerms(col, &col.Docs[i]))
				if err != nil {
					t.Fatal(err)
				}
				st.add(id, i)
			}
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(631))
			for k := 0; k < 20; k++ {
				id, _ := st.removeAt(rng.Intn(len(st.alive)))
				if err := w.Delete(id); err != nil {
					t.Fatal(err)
				}
			}

			// Arm the point and attempt the operation it belongs to. The
			// churn-state bookkeeping applies exactly the committed effect:
			// nothing for a crash before the swap, everything for one after.
			arm.arm(cp)
			var opErr error
			victim := st.alive[10]
			expectSegs := 5
			switch {
			case strings.HasPrefix(string(cp), "seal:"):
				for i := 300; i < 330; i++ {
					if _, err := w.Add(docTerms(col, &col.Docs[i])); err != nil {
						t.Fatal(err)
					}
				}
				opErr = w.Flush()
				if cp == CrashSealAfterCommit {
					for i := 300; i < 330; i++ {
						st.add(uint32(i), i)
					}
					expectSegs = 6
				}
			case strings.HasPrefix(string(cp), "merge:"):
				opErr = w.MergeAll()
				if cp == CrashMergeAfterCommit {
					expectSegs = 3 // fan-in 3 run replaced by one segment
				}
			default:
				opErr = w.Delete(victim)
				if cp == CrashDeleteAfterCommit {
					for i, id := range st.alive {
						if id == victim {
							st.removeAt(i)
							break
						}
					}
				}
			}
			if !errors.Is(opErr, ErrCrashPoint) {
				t.Fatalf("operation error = %v, want the injected crash (was the point reached?)", opErr)
			}
			if arm.fired == 0 {
				t.Fatal("armed crash point never fired")
			}
			if w.Err() == nil {
				t.Fatal("a crash must poison the writer")
			}

			// Take the crash image and recover it.
			image := filepath.Join(t.TempDir(), "image")
			copyDir(t, liveDir, image)
			rw, err := Open(Config{Dir: image, SealDocs: 60, MergeFanIn: 3})
			if err != nil {
				t.Fatalf("crash image at %s failed to reopen: %v", cp, err)
			}
			defer rw.Close()

			stats := rw.Stats()
			if stats.DocsAlive != int64(len(st.alive)) {
				t.Fatalf("recovered %d alive documents, want %d", stats.DocsAlive, len(st.alive))
			}
			if stats.Segments != expectSegs {
				t.Fatalf("recovered %d segments, want %d", stats.Segments, expectSegs)
			}
			assertDirConsistent(t, image)

			// Results must be byte-identical to a fresh build over the
			// survivors — no phantom statistics from lost documents, no
			// resurrected tombstones shading the ranking.
			sub, fromRef := survivorRef(t, col, st)
			pool, err := storage.NewPool(storage.NewDisk(), 1<<15)
			if err != nil {
				t.Fatal(err)
			}
			idx, err := index.Build(sub, pool)
			if err != nil {
				t.Fatal(err)
			}
			ms, err := core.NewMaxScore(idx, rank.NewBM25())
			if err != nil {
				t.Fatal(err)
			}
			s := rw.Searcher()
			for _, q := range queries {
				names := queryNames(col, q)
				res, err := s.Search(names, 10)
				if err != nil {
					t.Fatal(err)
				}
				if !res.Exact || res.Degraded {
					t.Fatalf("recovered index serves degraded certificates: %+v", res.Cert)
				}
				ref, err := ms.Search(refQuery(sub.Lex, names), 10)
				if err != nil {
					t.Fatal(err)
				}
				assertSameTop(t, "recovered vs survivor build", res.Top, mapRef(ref, fromRef))
			}

			// Tombstone semantics at the point: a delete that crashed before
			// its swap never happened (the victim is still deletable), one
			// that crashed after is durable (ErrNotFound).
			switch cp {
			case CrashDeleteBeforeCommit:
				if err := rw.Delete(victim); err != nil {
					t.Fatalf("uncommitted delete must not survive the crash: %v", err)
				}
			case CrashDeleteAfterCommit:
				if err := rw.Delete(victim); !errors.Is(err, ErrNotFound) {
					t.Fatalf("committed delete lost in the crash: %v", err)
				}
			}

			// The recovered writer is fully functional: it accepts writes,
			// seals, and serves them.
			if _, err := rw.Add(docTerms(col, &col.Docs[0])); err != nil {
				t.Fatalf("recovered writer rejects writes: %v", err)
			}
			if err := rw.Flush(); err != nil {
				t.Fatalf("recovered writer fails to seal: %v", err)
			}
			if _, err := s.Search(queryNames(col, queries[0]), 10); err != nil {
				t.Fatalf("recovered writer fails to search after a new seal: %v", err)
			}
		})
	}
}
