package live

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/collection"
	"repro/internal/index"
)

// A follower-mode writer is read-only: every mutation entry point must
// refuse with ErrReadOnly, and follower mode must reject the background
// loops that imply local writes.
func TestFollowerModeIsReadOnly(t *testing.T) {
	w, err := Open(Config{Dir: t.TempDir(), Follower: true})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if !w.ReadOnly() {
		t.Fatal("follower writer does not report ReadOnly")
	}
	if _, err := w.Add([]TermCount{{Term: "t1", TF: 1}}); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Add: %v, want ErrReadOnly", err)
	}
	if err := w.Flush(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Flush: %v, want ErrReadOnly", err)
	}
	if err := w.Delete(0); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Delete: %v, want ErrReadOnly", err)
	}
	if _, err := w.Update(0, nil); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Update: %v, want ErrReadOnly", err)
	}
	if err := w.MergeAll(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("MergeAll: %v, want ErrReadOnly", err)
	}

	if _, err := Open(Config{Dir: t.TempDir(), Follower: true, BackgroundMerge: true}); err == nil {
		t.Fatal("follower + BackgroundMerge must be rejected")
	}
	if _, err := Open(Config{Dir: t.TempDir(), Follower: true, FlushEvery: time.Second}); err == nil {
		t.Fatal("follower + FlushEvery must be rejected")
	}
}

// A mid-pull crash leaves staging directories and partial files under
// the index dir; follower-mode Open must reclaim them all without
// touching committed state.
func TestFollowerOpenGCsPullLeftovers(t *testing.T) {
	dir := t.TempDir()
	staging := filepath.Join(dir, "pull-seg-000004")
	if err := os.MkdirAll(staging, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{
		filepath.Join(staging, index.SegmentFile),
		filepath.Join(staging, DocTermsFile+".partial"),
		filepath.Join(dir, "stray.tmp"),
		filepath.Join(dir, "transfer.partial"),
	} {
		if err := os.WriteFile(f, []byte("leftover"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	w, err := Open(Config{Dir: dir, Follower: true})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, "pull-") ||
			strings.HasSuffix(name, ".tmp") || strings.HasSuffix(name, ".partial") {
			t.Fatalf("reopen GC left %s behind", name)
		}
	}
}

// copySegments copies the segment directories a manifest references
// from one index dir into another — a stand-in for the pull protocol,
// so ApplyManifest is testable without HTTP.
func copySegments(t *testing.T, m Manifest, from, to string) {
	t.Helper()
	for _, info := range m.Segments {
		src := filepath.Join(from, info.Name)
		dst := filepath.Join(to, info.Name)
		if err := os.MkdirAll(dst, 0o755); err != nil {
			t.Fatal(err)
		}
		files := []string{index.SegmentFile, DocTermsFile}
		if info.Tomb > 0 {
			files = append(files, AliveFileName(info.Tomb))
		}
		for _, f := range files {
			if err := copyFile(filepath.Join(src, f), filepath.Join(dst, f)); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func copyFile(src, dst string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.Create(dst)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// ApplyManifest is the follower-side install seam: given the leader's
// manifest and its committed files on local disk, it must install the
// exact leader state — same answers, tombstones included — reject
// stale ordinals, and persist across a reopen.
func TestApplyManifestInstallsLeaderState(t *testing.T) {
	col := genCollection(t, 400, 11)
	queries := genQueries(t, col, 12)
	ldir, fdir := t.TempDir(), t.TempDir()

	lw, err := Open(Config{Dir: ldir, SealDocs: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer lw.Close()
	// Two sealed generations with tombstones in the first.
	for i := 0; i < 200; i++ {
		if _, err := lw.Add(docTerms(col, &col.Docs[i])); err != nil {
			t.Fatal(err)
		}
	}
	if err := lw.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 200; i < 400; i++ {
		if _, err := lw.Add(docTerms(col, &col.Docs[i])); err != nil {
			t.Fatal(err)
		}
	}
	for id := uint32(0); id < 5; id++ {
		if err := lw.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := lw.Flush(); err != nil {
		t.Fatal(err)
	}

	fw, err := Open(Config{Dir: fdir, Follower: true})
	if err != nil {
		t.Fatal(err)
	}
	m := lw.Manifest()
	copySegments(t, m, ldir, fdir)
	if err := fw.ApplyManifest(m); err != nil {
		t.Fatal(err)
	}
	if got := fw.Manifest().Generation; got != m.Generation {
		t.Fatalf("follower at generation %d after apply, want %d", got, m.Generation)
	}
	assertFollowerEquiv(t, lw, fw, col, queries)

	// Same or older ordinal must be refused: the replication clock only
	// moves forward.
	if err := fw.ApplyManifest(m); err == nil {
		t.Fatal("re-applying the installed generation succeeded")
	}

	// The leader moves on (more tombstones -> a new alive version);
	// shipping just the delta installs cleanly.
	for id := uint32(5); id < 10; id++ {
		if err := lw.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := lw.Flush(); err != nil {
		t.Fatal(err)
	}
	m2 := lw.Manifest()
	if m2.Generation <= m.Generation {
		t.Fatalf("leader did not advance: %d -> %d", m.Generation, m2.Generation)
	}
	copySegments(t, m2, ldir, fdir)
	if err := fw.ApplyManifest(m2); err != nil {
		t.Fatal(err)
	}
	assertFollowerEquiv(t, lw, fw, col, queries)

	// The installed state is durable: a reopen serves it unchanged.
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	fw2, err := Open(Config{Dir: fdir, Follower: true})
	if err != nil {
		t.Fatal(err)
	}
	defer fw2.Close()
	if got := fw2.Manifest().Generation; got != m2.Generation {
		t.Fatalf("reopened follower at generation %d, want %d", got, m2.Generation)
	}
	assertFollowerEquiv(t, lw, fw2, col, queries)
}

// ApplyManifest must verify what it installs: a manifest referencing a
// segment whose files are absent (or inconsistent) fails without moving
// the serving generation.
func TestApplyManifestRejectsMissingFiles(t *testing.T) {
	col := genCollection(t, 120, 13)
	ldir, fdir := t.TempDir(), t.TempDir()
	lw, err := Open(Config{Dir: ldir, SealDocs: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer lw.Close()
	streamInto(t, lw, col)
	if err := lw.Flush(); err != nil {
		t.Fatal(err)
	}
	fw, err := Open(Config{Dir: fdir, Follower: true})
	if err != nil {
		t.Fatal(err)
	}
	defer fw.Close()
	m := lw.Manifest()
	if err := fw.ApplyManifest(m); err == nil {
		t.Fatal("ApplyManifest installed a manifest whose segment files are missing")
	}
	if got := fw.Manifest().Generation; got != 0 {
		t.Fatalf("failed apply moved the generation to %d", got)
	}
	s, err := fw.Acquire()
	if err != nil {
		t.Fatalf("follower unusable after failed apply: %v", err)
	}
	s.Close()
}

// assertFollowerEquiv runs every query on both writers and requires
// byte-identical rankings.
func assertFollowerEquiv(t *testing.T, lw, fw *Writer, col *collection.Collection, queries []collection.Query) {
	t.Helper()
	ls, fs := lw.Searcher(), fw.Searcher()
	for i, q := range queries {
		names := queryNames(col, q)
		lr, err := ls.Search(names, 10)
		if err != nil {
			t.Fatalf("leader query %d: %v", i, err)
		}
		fr, err := fs.Search(names, 10)
		if err != nil {
			t.Fatalf("follower query %d: %v", i, err)
		}
		if !lr.Exact || !fr.Exact {
			t.Fatalf("query %d not exact (leader %v, follower %v)", i, lr.Exact, fr.Exact)
		}
		assertSameTop(t, "follower equivalence", fr.Top, lr.Top)
	}
}
