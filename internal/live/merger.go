package live

import (
	"fmt"
	"math"
	"os"
	"path/filepath"

	"repro/internal/cost"
	"repro/internal/index"
	"repro/internal/lexicon"
	"repro/internal/storage"
)

// defaultTermsPerQuery is the expected query fan-out the merge cost
// model prices the per-segment page floor against.
const defaultTermsPerQuery = 4

// kickMerger nudges the background merger; a kick already pending is
// enough (the merger drains to a fixpoint per kick).
func (w *Writer) kickMerger() {
	if !w.cfg.BackgroundMerge {
		return
	}
	select {
	case w.mergeKick <- struct{}{}:
	default:
	}
}

// mergerLoop is the background merger: on every kick it runs merges
// until the policy finds nothing worthwhile.
func (w *Writer) mergerLoop() {
	defer w.bgDone.Done()
	for {
		select {
		case <-w.stop:
			return
		case <-w.mergeKick:
			for {
				select {
				case <-w.stop:
					return
				default:
				}
				did, err := w.mergeOnce()
				if err != nil || !did {
					break // the failure is sticky in w.failed
				}
			}
		}
	}
}

// MergeAll runs the merge policy to fixpoint on the calling goroutine —
// the deterministic counterpart of the background merger, used by the
// benchmark harness (where segment layout must be reproducible) and by
// tests.
func (w *Writer) MergeAll() error {
	for {
		did, err := w.mergeOnce()
		if err != nil || !did {
			return err
		}
	}
}

// WaitMergeIdle blocks until no seal or merge is in flight and the
// policy has no merge left to run — the quiescent point tests assert
// equivalence at. It returns immediately on a closed or failed writer.
func (w *Writer) WaitMergeIdle() {
	w.mu.Lock()
	defer w.mu.Unlock()
	for !w.closed && w.failed == nil &&
		(w.sealing || w.mergeBusy || (w.cfg.BackgroundMerge && w.planLocked() != nil)) {
		w.cond.Wait()
	}
}

// mergeOnce plans and runs at most one merge. It reports whether a
// merge was committed. Merges serialize on mergeBusy, so MergeAll and
// the background merger can coexist.
func (w *Writer) mergeOnce() (bool, error) {
	w.mu.Lock()
	for w.mergeBusy && !w.closed && w.failed == nil {
		w.cond.Wait()
	}
	if w.closed || w.failed != nil {
		err := w.failed
		w.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return false, err
	}
	run := w.planLocked()
	if run == nil {
		w.mu.Unlock()
		return false, nil
	}
	w.mergeBusy = true
	// The merged segment persists the latest *committed seal* snapshot,
	// not the master: the master's statistics already include buffered
	// documents, which a crash (or Close without Flush) discards — if
	// the merged segment carried them and became the reopen authority,
	// phantom statistics would survive the crash. The seal snapshot
	// covers exactly the sealed documents and is a superset of every
	// input's lexicon; it rides with its capture ordinal, so reopen's
	// max-ordinal rule stays correct even when a seal that captured
	// earlier commits after this merge.
	frozen := w.sealedSnap
	snap := w.sealedSnapID
	seq := w.seq
	w.seq++
	for _, s := range run {
		s.acquire() // hold the inputs across the unlocked build
	}
	w.mu.Unlock()

	seg, err := mergeSegments(w.cfg, run, seq, snap, frozen)

	w.mu.Lock()
	w.mergeBusy = false
	spliced := false
	if err == nil {
		w.spliceLocked(run, seg)
		spliced = true
		w.merges++
		// The current sealedSnap (not the merge's capture-time one):
		// seals committing during the build advanced it past every
		// segment now in the chain.
		err = w.commitLocked(w.sealedSnap)
		if err == nil {
			for _, s := range run {
				s.dead.Store(true)
			}
		}
	}
	if err != nil && w.failed == nil {
		w.failed = err
	}
	w.cond.Broadcast()
	w.mu.Unlock()
	for _, s := range run {
		s.release() // the merger's temporary hold
		if spliced {
			s.release() // the chain's reference: the input left w.segs
		}
	}
	return err == nil, err
}

// planLocked picks the next run to merge: the smallest window of
// MergeFanIn adjacent segments whose sizes sit within one tier
// (max ≤ TierFactor × min), capped by MaxMergeDocs, and worth its
// one-time cost per the internal/cost model. Returns nil when nothing
// qualifies.
func (w *Writer) planLocked() []*segment {
	k := w.cfg.MergeFanIn
	if k < 2 || len(w.segs) < k {
		return nil
	}
	var best []*segment
	bestDocs := int64(math.MaxInt64)
	for i := 0; i+k <= len(w.segs); i++ {
		run := w.segs[i : i+k]
		minDocs, maxDocs, total := run[0].docs, run[0].docs, int64(0)
		for _, s := range run {
			if s.docs < minDocs {
				minDocs = s.docs
			}
			if s.docs > maxDocs {
				maxDocs = s.docs
			}
			total += int64(s.docs)
		}
		if float64(maxDocs) > w.cfg.MergeTierFactor*float64(minDocs) {
			continue // size spread too wide: not one tier
		}
		if w.cfg.MaxMergeDocs > 0 && total > int64(w.cfg.MaxMergeDocs) {
			continue
		}
		if total >= bestDocs {
			continue
		}
		stats := make([]cost.SegmentStats, len(run))
		for j, s := range run {
			stats[j] = cost.SegmentStats{Docs: s.docs, Postings: s.postings, Bytes: s.bytes}
		}
		est, err := cost.EstimateMerge(stats, defaultTermsPerQuery, w.cfg.PageWeight)
		if err != nil || !est.Worthwhile(w.cfg.MergeHorizon) {
			continue
		}
		best = append([]*segment(nil), run...)
		bestDocs = total
	}
	return best
}

// spliceLocked replaces the contiguous run in the chain by the merged
// segment. Seals only append and merges serialize, so the run is still
// present and contiguous.
func (w *Writer) spliceLocked(run []*segment, merged *segment) {
	i := 0
	for ; i < len(w.segs); i++ {
		if w.segs[i] == run[0] {
			break
		}
	}
	out := make([]*segment, 0, len(w.segs)-len(run)+1)
	out = append(out, w.segs[:i]...)
	out = append(out, merged)
	out = append(out, w.segs[i+len(run):]...)
	w.segs = out
}

// mergeSegments compacts a run of adjacent segments into one block-max
// segment: concatenate via index.Merge, persist, reopen through a fresh
// pool.
func mergeSegments(cfg Config, run []*segment, seq, snap uint64, frozen *lexicon.Lexicon) (*segment, error) {
	inputs := make([]*index.Index, len(run))
	for i, s := range run {
		inputs[i] = s.idx
	}
	pool, err := storage.NewPool(storage.NewDisk(), 1<<15)
	if err != nil {
		return nil, fmt.Errorf("live: merge: %w", err)
	}
	merged, err := index.Merge(inputs, frozen, pool)
	if err != nil {
		return nil, fmt.Errorf("live: merge: %w", err)
	}
	name := segmentName(seq)
	if err := merged.Persist(filepath.Join(cfg.Dir, name)); err != nil {
		return nil, fmt.Errorf("live: merge: %w", err)
	}
	seg, err := openSegment(cfg.Dir, name, seq, snap, run[0].base, cfg.PoolPages)
	if err != nil {
		os.RemoveAll(filepath.Join(cfg.Dir, name))
		return nil, err
	}
	return seg, nil
}
