package live

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"repro/internal/blockcache"
	"repro/internal/cost"
	"repro/internal/index"
	"repro/internal/lexicon"
	"repro/internal/postings"
	"repro/internal/storage"
	"repro/internal/tune"
)

// defaultTermsPerQuery is the expected query fan-out the merge cost
// model prices the per-segment page floor against — the static fallback
// when no tuner has measured the real fan-out yet.
const defaultTermsPerQuery = 4

// mergePlan is one priced maintenance action the planner selected: the
// run to compact, whether it is a tiered merge or a purge rewrite, and
// the prediction the tuner will be held to after commit.
type mergePlan struct {
	run      []*segment
	kind     string  // "merge" or "purge"
	predGain float64 // weighted per-query gain (tuned plans only)
	predCost float64 // predicted one-time weighted cost (tuned plans only)
	horizon  int     // amortization horizon the verdict used
}

// segStats summarizes a segment for the cost model, tombstone picture
// included: the purge-aware pricing scales the rewrite cost by the live
// fraction and credits the dead share as per-query gain.
func segStats(s *segment) cost.SegmentStats {
	return cost.SegmentStats{
		Docs:     s.docs,
		Postings: s.postings,
		Bytes:    s.bytes,
		Alive:    s.aliveDocs,
		Stored:   s.aliveDocs + s.purgeable,
	}
}

// kickMerger nudges the background merger; a kick already pending is
// enough (the merger drains to a fixpoint per kick).
func (w *Writer) kickMerger() {
	if !w.cfg.BackgroundMerge {
		return
	}
	select {
	case w.mergeKick <- struct{}{}:
	default:
	}
}

// mergerLoop is the background merger: on every kick it runs merges
// until the policy finds nothing worthwhile.
func (w *Writer) mergerLoop() {
	defer w.bgDone.Done()
	for {
		select {
		case <-w.stop:
			return
		case <-w.mergeKick:
			for {
				select {
				case <-w.stop:
					return
				default:
				}
				did, err := w.mergeOnce()
				if err != nil || !did {
					break // the failure is sticky in w.failed
				}
			}
		}
	}
}

// MergeAll runs the merge policy to fixpoint on the calling goroutine —
// the deterministic counterpart of the background merger, used by the
// benchmark harness (where segment layout must be reproducible) and by
// tests.
func (w *Writer) MergeAll() error {
	if w.cfg.Follower {
		return ErrReadOnly
	}
	for {
		did, err := w.mergeOnce()
		if err != nil || !did {
			return err
		}
	}
}

// WaitMergeIdle blocks until no seal or merge is in flight and the
// policy has no merge left to run — the quiescent point tests assert
// equivalence at. It returns immediately on a closed or failed writer.
func (w *Writer) WaitMergeIdle() {
	w.mu.Lock()
	defer w.mu.Unlock()
	for !w.closed && w.failed == nil &&
		(w.sealing || w.mergeBusy || (w.cfg.BackgroundMerge && w.planLocked() != nil)) {
		w.cond.Wait()
	}
}

// mergeOnce plans and runs at most one merge (a multi-segment tiered
// compaction or a single-segment purge rewrite). It reports whether a
// merge was committed. Merges serialize on mergeBusy, so MergeAll and
// the background merger can coexist.
func (w *Writer) mergeOnce() (bool, error) {
	w.mu.Lock()
	for w.mergeBusy && !w.closed && w.failed == nil {
		w.cond.Wait()
	}
	if w.closed || w.failed != nil {
		err := w.failed
		w.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return false, err
	}
	plan := w.planLocked()
	if plan == nil {
		w.mu.Unlock()
		return false, nil
	}
	run := plan.run
	w.mergeBusy = true
	// The merged segment persists the latest *committed seal* snapshot,
	// not the master: the master's statistics already include buffered
	// documents, which a crash (or Close without Flush) discards — if
	// the merged segment carried them and became the reopen authority,
	// phantom statistics would survive the crash. The seal snapshot
	// covers exactly the sealed documents and is a superset of every
	// input's lexicon; it rides with its capture ordinal, so reopen's
	// max-ordinal rule stays correct even when a seal that captured
	// earlier commits after this merge. (Snapshots are purge-agnostic:
	// the documents this merge purges stay counted, and the tombstone
	// ledger — rebuilt on reopen from the bitmaps and retained forward
	// entries — subtracts them at every install.)
	frozen := w.sealedSnap
	snap := w.sealedSnapID
	seq := w.seq
	w.seq++
	// Capture the deletion view the build will purge. Deletions
	// committing during the build mutate the segments' pointers, not
	// these captured values; the commit below folds any such late
	// tombstones into the merged segment's bitmap.
	alives := make([]*postings.AliveBitmap, len(run))
	for i, s := range run {
		alives[i] = s.alive
		s.acquire() // hold the inputs across the unlocked build
	}
	w.mu.Unlock()

	var seg *segment
	err := w.crash(CrashMergeBeforePersist)
	if err == nil {
		seg, err = mergeSegments(w.cfg, run, alives, seq, snap, frozen, w.blockCache)
	}
	// A read fault during the build is the media's failure, not the
	// protocol's: re-verify the inputs, quarantine the ones that fail,
	// and leave the merge for a later kick instead of poisoning the
	// writer — the index keeps serving (degraded) and keeps accepting
	// writes while the damage is contained to the sick segment.
	dataFault := err != nil && isDataFault(err)
	if dataFault {
		for _, s := range run {
			if s.vdev.Verify() != nil && s.quarantine(err) {
				w.fc.quarantines.Add(1)
			}
		}
	}

	w.mu.Lock()
	w.mergeBusy = false
	spliced := false
	if dataFault {
		w.cond.Broadcast()
		w.mu.Unlock()
		for _, s := range run {
			s.release() // the merger's temporary hold
		}
		return false, nil
	}
	if err == nil {
		// Carry forward tombstones committed while the build ran: the
		// merged segment still stores those documents' postings (the
		// build purged only the captured bitmaps), so they must be dead
		// in its bitmap — and purgeable by a later pass. The concat of
		// the inputs' *current* bitmaps is exactly that view.
		err = w.adoptMergedBitmapLocked(seg, run)
	}
	if err == nil {
		// Simulated death after the merged segment (and its bitmap) is
		// fully persisted but before the manifest references it.
		err = w.crash(CrashMergeBeforeCommit)
	}
	if err == nil {
		w.spliceLocked(run, seg)
		spliced = true
		w.merges++
		// commitLocked installs with the *current* tightened snapshot
		// (not the merge's capture-time one): seals committing during
		// the build advanced it past every segment now in the chain,
		// and a purge changes no statistics — the ledger already
		// subtracted its documents when they were tombstoned.
		err = w.commitLocked()
		if err == nil {
			if cerr := w.crash(CrashMergeAfterCommit); cerr != nil {
				// Simulated death after the swap but before input
				// retirement: the merge is durable, the inputs' stale
				// directories stay for reopen's GC.
				err = cerr
			} else {
				// Account the committed merge's physical work and hold the
				// tuner's prediction to it: pages read from the inputs,
				// pages written to the output, postings re-encoded.
				var pagesRead, pagesWritten, reencoded int64
				for _, s := range run {
					pagesRead += (s.bytes + storage.PageSize - 1) / storage.PageSize
				}
				pagesWritten = (seg.bytes + storage.PageSize - 1) / storage.PageSize
				reencoded = seg.postings
				w.mergePagesRead += pagesRead
				w.mergePagesWritten += pagesWritten
				w.mergeReencoded += reencoded
				if w.cfg.Tune != nil {
					w.cfg.Tune.ObserveMerge(tune.MergeObs{
						Kind:         plan.kind,
						Inputs:       len(run),
						FirstSeq:     run[0].seq,
						PagesRead:    pagesRead,
						PagesWritten: pagesWritten,
						Reencoded:    reencoded,
						PredGain:     plan.predGain,
						PredCost:     plan.predCost,
						Horizon:      plan.horizon,
					})
				}
				for _, s := range run {
					s.dead.Store(true)
					// Retired segments never serve again; drop their
					// cached blocks so the bytes go to live segments.
					// (In-flight snapshots still reading them simply
					// re-fault — seq-tagged keys can never go stale.)
					if w.blockCache != nil {
						w.blockCache.PurgeSpace(s.seq)
					}
				}
			}
		}
	} else if seg != nil {
		seg.release() // never entered the chain; drop the opener's ref
		if errors.Is(err, ErrCrashPoint) {
			// A real crash would not have cleaned up either: the
			// uncommitted directory stays, for reopen's GC to prove
			// itself on.
		} else if rerr := os.RemoveAll(seg.dir); rerr != nil {
			cleanupLogf("live: removing abandoned merge output %s: %v (reopen GC will retry)", seg.dir, rerr)
		}
	}
	if err != nil && w.failed == nil {
		w.failed = err
	}
	w.cond.Broadcast()
	w.mu.Unlock()
	for _, s := range run {
		s.release() // the merger's temporary hold
		if spliced {
			s.release() // the chain's reference: the input left w.segs
		}
	}
	return err == nil, err
}

// adoptMergedBitmapLocked installs the merged segment's deletion view:
// the concatenation of the inputs' current alive bitmaps, persisted as
// the segment's first bitmap version when any document is dead. Called
// under the writer mutex before the merged segment is spliced in.
func (w *Writer) adoptMergedBitmapLocked(merged *segment, run []*segment) error {
	anyDead := false
	for _, s := range run {
		if s.alive != nil && !s.alive.AllAlive() {
			anyDead = true
			break
		}
	}
	if !anyDead {
		return nil
	}
	bm := postings.NewAliveBitmap(merged.docs)
	off := uint32(0)
	for _, s := range run {
		if s.alive != nil {
			for id := 0; id < s.docs; id++ {
				if !s.alive.Alive(uint32(id)) {
					bm.Kill(off + uint32(id))
				}
			}
		}
		off += uint32(s.docs)
	}
	if err := index.WriteAlive(filepath.Join(merged.dir, aliveName(1)), bm); err != nil {
		return err
	}
	merged.alive = bm
	merged.aliveVer = 1
	merged.recountAlive()
	return nil
}

// planLocked picks the next maintenance action.
//
// Untuned (Config.Tune nil), the static policy: tiered compaction first
// — the smallest window of MergeFanIn adjacent segments whose sizes sit
// within one tier (max ≤ TierFactor × min), capped by MaxMergeDocs, and
// worth its one-time cost per the internal/cost model. When no tiered
// run qualifies, the purge rule applies: the segment with the highest
// fraction of tombstoned-but-still-stored documents, once that fraction
// reaches PurgeDeadFrac, is rewritten alone to reclaim the dead
// postings and re-tighten its block bounds (no cost-model gate — the
// rewrite is how deleted space is ever returned).
//
// Tuned, every candidate — tiered windows at the recommended fan-in and
// single-segment purge rewrites — is priced with the calibrated
// coefficients and the action with the highest predicted net benefit
// wins (see planTunedLocked). Returns nil when nothing qualifies.
func (w *Writer) planLocked() *mergePlan {
	if w.cfg.Tune != nil {
		return w.planTunedLocked()
	}
	if run := w.planTieredLocked(); run != nil {
		return &mergePlan{run: run, kind: "merge", horizon: w.cfg.MergeHorizon}
	}
	if run := w.planPurgeLocked(); run != nil {
		return &mergePlan{run: run, kind: "purge", horizon: w.cfg.MergeHorizon}
	}
	return nil
}

// planTunedLocked ranks ALL candidate actions by calibrated predicted
// net benefit — gain × horizon − cost, the portfolio view of
// maintenance debt: retire the highest-benefit item first instead of
// the first qualifying one. Candidates are tiered windows of the
// tuner's recommended fan-in (same tier/size constraints as the static
// policy) and single-segment purge rewrites of any tombstoned segment.
// A candidate with negative net benefit is skipped — except the static
// guarantee stays: a segment at or past PurgeDeadFrac is always
// eligible, because purge rewrites are also how dead space is returned,
// not just a latency trade. Ties break toward the earlier run so plans
// are deterministic.
func (w *Writer) planTunedLocked() *mergePlan {
	tn := w.cfg.Tune
	terms := tn.TermsPerQuery()
	if terms <= 0 {
		terms = defaultTermsPerQuery
	}
	weight := tn.PageWeight()
	if weight <= 0 {
		weight = w.cfg.PageWeight
	}
	horizon := tn.Horizon(w.cfg.MergeHorizon)
	ratio := tn.CostRatio()

	var best *mergePlan
	var bestNet float64
	consider := func(run []*segment, kind string, forced bool) {
		stats := make([]cost.SegmentStats, len(run))
		for j, s := range run {
			stats[j] = segStats(s)
		}
		est, err := cost.EstimateMerge(stats, terms, weight)
		if err != nil {
			return
		}
		predCost := est.MergeCost * ratio // realized/predicted feedback
		net := est.QueryGain*float64(horizon) - predCost
		if net < 0 && !forced {
			return
		}
		if best != nil && net <= bestNet {
			return
		}
		best = &mergePlan{
			run:      append([]*segment(nil), run...),
			kind:     kind,
			predGain: est.QueryGain,
			predCost: predCost,
			horizon:  horizon,
		}
		bestNet = net
	}

	// Price tiered windows at every run length the tuner's fan-in bounds
	// allow — the benefit ranking, not a fixed fan-in, picks the size: a
	// read-heavy phase approves one wide consolidation over a cascade of
	// pair merges that would re-encode the same postings repeatedly.
	// (MergeFanIn is still asked so the headline recommendation shows up
	// in the decision log and on /tune.)
	tn.MergeFanIn(w.cfg.MergeFanIn)
	kLo, kHi := tn.FanInRange(w.cfg.MergeFanIn)
	if kLo < 2 {
		kLo = 2
	}
	for k := kLo; k <= kHi && k <= len(w.segs); k++ {
		for i := 0; i+k <= len(w.segs); i++ {
			run := w.segs[i : i+k]
			if !w.tieredWindowOKLocked(run) {
				continue
			}
			consider(run, "merge", false)
		}
	}
	for _, s := range w.segs {
		if s.purgeable == 0 || s.quarantined.Load() {
			continue
		}
		frac := float64(s.purgeable) / float64(s.aliveDocs+s.purgeable)
		consider([]*segment{s}, "purge", frac >= w.cfg.PurgeDeadFrac)
	}
	return best
}

// tieredWindowOKLocked checks the structural constraints a tiered merge
// window must satisfy regardless of pricing: healthy inputs, one size
// tier, and the MaxMergeDocs cap.
func (w *Writer) tieredWindowOKLocked(run []*segment) bool {
	minDocs, maxDocs, total := run[0].docs, run[0].docs, int64(0)
	for _, s := range run {
		if s.quarantined.Load() {
			return false
		}
		if s.docs < minDocs {
			minDocs = s.docs
		}
		if s.docs > maxDocs {
			maxDocs = s.docs
		}
		total += int64(s.docs)
	}
	if float64(maxDocs) > w.cfg.MergeTierFactor*float64(minDocs) {
		return false
	}
	if w.cfg.MaxMergeDocs > 0 && total > int64(w.cfg.MaxMergeDocs) {
		return false
	}
	return true
}

func (w *Writer) planTieredLocked() []*segment {
	k := w.cfg.MergeFanIn
	if k < 2 || len(w.segs) < k {
		return nil
	}
	var best []*segment
	bestDocs := int64(math.MaxInt64)
	for i := 0; i+k <= len(w.segs); i++ {
		run := w.segs[i : i+k]
		// A quarantined segment cannot be read reliably; merging it would
		// either fail or launder damaged data into a fresh segment.
		// Reverify must clear it first. (tieredWindowOKLocked also
		// enforces the tier spread and the MaxMergeDocs cap.)
		if !w.tieredWindowOKLocked(run) {
			continue
		}
		var total int64
		for _, s := range run {
			total += int64(s.docs)
		}
		if total >= bestDocs {
			continue
		}
		stats := make([]cost.SegmentStats, len(run))
		for j, s := range run {
			stats[j] = segStats(s)
		}
		est, err := cost.EstimateMerge(stats, defaultTermsPerQuery, w.cfg.PageWeight)
		if err != nil || !est.Worthwhile(w.cfg.MergeHorizon) {
			continue
		}
		best = append([]*segment(nil), run...)
		bestDocs = total
	}
	return best
}

func (w *Writer) planPurgeLocked() []*segment {
	var best *segment
	var bestFrac float64
	for _, s := range w.segs {
		if s.purgeable == 0 || s.quarantined.Load() {
			continue
		}
		// Fraction of *stored* documents (alive + tombstoned-but-stored).
		// The full id span would count long-purged holes in the
		// denominator, making old segments need ever more tombstones to
		// requalify — dead space would stop being reclaimed.
		frac := float64(s.purgeable) / float64(s.aliveDocs+s.purgeable)
		if frac >= w.cfg.PurgeDeadFrac && frac > bestFrac {
			best = s
			bestFrac = frac
		}
	}
	if best == nil {
		return nil
	}
	return []*segment{best}
}

// spliceLocked replaces the contiguous run in the chain by the merged
// segment. Seals only append and merges serialize, so the run is still
// present and contiguous.
func (w *Writer) spliceLocked(run []*segment, merged *segment) {
	i := 0
	for ; i < len(w.segs); i++ {
		if w.segs[i] == run[0] {
			break
		}
	}
	out := make([]*segment, 0, len(w.segs)-len(run)+1)
	out = append(out, w.segs[:i]...)
	out = append(out, merged)
	out = append(out, w.segs[i+len(run):]...)
	w.segs = out
}

// mergeSegments compacts a run of adjacent segments into one block-max
// segment: concatenate-and-purge via index.Merge (dropping documents
// dead in the captured bitmaps), copy the forward sidecar entries of
// every document — dead ones included, so the tombstone ledger stays
// reconstructible after their postings are gone — persist, and reopen
// through a fresh pool.
func mergeSegments(cfg Config, run []*segment, alives []*postings.AliveBitmap, seq, snap uint64, frozen *lexicon.Lexicon, bc *blockcache.Cache) (*segment, error) {
	// The merged segment reopens through a pool sized by the tuner when
	// one is attached: a fault-heavy workload earns more frames, within
	// the configured bounds.
	if cfg.Tune != nil {
		if v := cfg.Tune.PoolPages(cfg.PoolPages); v >= 8 {
			cfg.PoolPages = v
		}
	}
	inputs := make([]*index.Index, len(run))
	total := 0
	for i, s := range run {
		inputs[i] = s.idx
		total += s.docs
	}
	pool, err := storage.NewPool(storage.NewDisk(), 1<<15)
	if err != nil {
		return nil, fmt.Errorf("live: merge: %w", err)
	}
	merged, err := index.Merge(inputs, alives, frozen, pool)
	if err != nil {
		return nil, fmt.Errorf("live: merge: %w", err)
	}
	name := segmentName(seq)
	dir := filepath.Join(cfg.Dir, name)
	cleanup := func(err error) (*segment, error) {
		if rerr := os.RemoveAll(dir); rerr != nil {
			cleanupLogf("live: removing abandoned merge output %s: %v (reopen GC will retry)", dir, rerr)
		}
		return nil, err
	}
	if err := merged.Persist(dir); err != nil {
		return cleanup(fmt.Errorf("live: merge: %w", err))
	}
	blobs := make([][]byte, 0, total)
	for _, s := range run {
		for id := 0; id < s.docs; id++ {
			raw, err := s.fwd.raw(uint32(id))
			if err != nil {
				return cleanup(fmt.Errorf("live: merge: %w", err))
			}
			blobs = append(blobs, raw)
		}
	}
	if err := writeDocTerms(dir, blobs); err != nil {
		return cleanup(err)
	}
	seg, err := openSegment(cfg, name, seq, snap, run[0].base, 0, bc)
	if err != nil {
		return cleanup(err)
	}
	return seg, nil
}
