package live

import (
	"sync"
	"testing"

	"repro/internal/collection"
	"repro/internal/rank"
	"repro/internal/storage"
)

// devRegistry is the WrapDevice seam of the fault tests: it wraps every
// opened segment in a seeded FaultDevice and remembers it by segment
// name, so a test can arm faults on one specific segment.
type devRegistry struct {
	mu    sync.Mutex
	names []string
	devs  map[string]*storage.FaultDevice
}

func newDevRegistry() *devRegistry {
	return &devRegistry{devs: map[string]*storage.FaultDevice{}}
}

func (r *devRegistry) wrap(name string, dev storage.Device) storage.Device {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := storage.NewFaultDevice(dev, int64(len(r.names))+101)
	r.names = append(r.names, name)
	r.devs[name] = f
	return f
}

func (r *devRegistry) dev(name string) *storage.FaultDevice {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.devs[name]
}

// buildFaultySegments opens a live index of exactly two sealed segments
// (docs 0..half-1 and half..2*half-1) with every segment device wrapped
// in a FaultDevice, and returns the fault-free baseline answers. The
// pool is pinned to its floor (8 pages) and the segments are built big
// enough that their postings dwarf it, so queries keep doing physical
// reads — the surface faults are injected on.
func buildFaultySegments(t *testing.T, half int) (*Writer, *devRegistry, *collection.Collection, []collection.Query, [][]rank.DocScore) {
	t.Helper()
	col := genCollection(t, 2*half, 71)
	queries := genQueries(t, col, 72)
	reg := newDevRegistry()
	w, err := Open(Config{
		Dir: t.TempDir(), SealDocs: half, PoolPages: 8, WrapDevice: reg.wrap,
	})
	if err != nil {
		t.Fatal(err)
	}
	streamInto(t, w, col)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := w.Stats().Segments; got != 2 {
		t.Fatalf("setup built %d segments, want 2", got)
	}
	s := w.Searcher()
	baseline := make([][]rank.DocScore, len(queries))
	for i, q := range queries {
		res, err := s.Search(queryNames(col, q), 10)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Exact || res.Degraded {
			t.Fatalf("fault-free baseline not exact: %+v", res.Cert)
		}
		baseline[i] = res.Top
	}
	return w, reg, col, queries, baseline
}

// TestQuarantineDegradedServing is the degraded-mode contract end to
// end: a segment whose device fails permanently is quarantined on first
// contact instead of failing the query; every answer from then on is
// either byte-identical to the fault-free answer or explicitly degraded
// — byte-identical to a fresh build over the served segments, naming
// the skipped one — and once the faults clear, one re-verification pass
// returns the segment to service with full-exactness answers again.
func TestQuarantineDegradedServing(t *testing.T) {
	const half = 4000
	w, reg, col, queries, baseline := buildFaultySegments(t, half)
	defer w.Close()
	s := w.Searcher()

	// The degraded reference: the fault-free exact ranking restricted to
	// the first segment's documents. A served segment evaluates with the
	// snapshot's global statistics, so a degraded answer is exactly the
	// global ranking with the skipped segment's documents removed — not
	// a fresh build over the survivors, whose statistics would differ.
	degRef := make([][]rank.DocScore, len(queries))
	for i, q := range queries {
		res, err := s.Search(queryNames(col, q), 2*half)
		if err != nil {
			t.Fatal(err)
		}
		var keep []rank.DocScore
		for _, ds := range res.Top {
			if ds.DocID < uint32(half) {
				keep = append(keep, ds)
				if len(keep) == 10 {
					break
				}
			}
		}
		degRef[i] = keep
	}

	sick := reg.names[1] // the second sealed segment
	reg.dev(sick).FailAll(true)

	degraded := 0
	for i, q := range queries {
		names := queryNames(col, q)
		res, err := s.Search(names, 10)
		if err != nil {
			t.Fatalf("a data fault must degrade, not fail, the query: %v", err)
		}
		if !res.Degraded {
			// Served entirely from cache: must still be the exact answer.
			if !res.Exact {
				t.Fatalf("query %d neither exact nor degraded: %+v", i, res.Cert)
			}
			assertSameTop(t, "cache-served under faults", res.Top, baseline[i])
			continue
		}
		degraded++
		if res.Exact {
			t.Fatalf("query %d claims exactness with a skipped segment", i)
		}
		c := res.Cert
		if c.ShardsServed != 1 || c.ShardsTotal != 2 || len(c.Skipped) != 1 || c.Skipped[0] != sick {
			t.Fatalf("query %d certificate = %+v, want 1 of 2 served, %s skipped", i, c, sick)
		}
		assertSameTop(t, "degraded vs served-docs ranking", res.Top, degRef[i])
	}
	if degraded == 0 {
		t.Fatal("no query ever touched the failing device — the test surface is gone")
	}
	fs := w.FaultStats()
	if fs.QuarantinedSegments != 1 || fs.Quarantines != 1 {
		t.Fatalf("FaultStats = %+v, want exactly one quarantined segment", fs)
	}
	if fs.ReadFaults == 0 {
		t.Fatalf("FaultStats = %+v, want the failed reads accounted", fs)
	}
	if fs.DegradedQueries != int64(degraded) {
		t.Fatalf("DegradedQueries = %d, want %d", fs.DegradedQueries, degraded)
	}

	// Quarantined segments are skipped at schedule time: no new device
	// contact, still explicitly degraded.
	before := reg.dev(sick).Stats().Reads
	res, err := s.Search(queryNames(col, queries[0]), 10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Fatal("quarantined segment must keep degrading answers")
	}
	if after := reg.dev(sick).Stats().Reads; after != before {
		t.Fatalf("quarantined segment still read from: %d -> %d reads", before, after)
	}

	// A writer with a quarantined segment still accepts writes and
	// merges must not touch the sick segment.
	if err := w.MergeAll(); err != nil {
		t.Fatalf("merge with a quarantined segment in the chain: %v", err)
	}
	if w.Err() != nil {
		t.Fatalf("quarantine poisoned the writer: %v", w.Err())
	}

	// Recovery: clear the faults, re-verify, and the index serves
	// full-exactness answers again.
	reg.dev(sick).Clear()
	if n := w.Reverify(); n != 1 {
		t.Fatalf("Reverify recovered %d segments, want 1", n)
	}
	fs = w.FaultStats()
	if fs.QuarantinedSegments != 0 || fs.Recovered != 1 {
		t.Fatalf("FaultStats after recovery = %+v, want 0 quarantined, 1 recovered", fs)
	}
	for i, q := range queries {
		res, err := s.Search(queryNames(col, q), 10)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Exact || res.Degraded {
			t.Fatalf("recovered index still degraded on query %d: %+v", i, res.Cert)
		}
		assertSameTop(t, "recovered vs baseline", res.Top, baseline[i])
	}
}

// TestTransientFaultsAbsorbedByRetry scripts one transient failure per
// page: every cold read fails once and succeeds on the pool's first
// retry, so the whole query load completes exactly — no degraded
// certificates, no quarantines — with the retries accounted.
func TestTransientFaultsAbsorbedByRetry(t *testing.T) {
	const half = 2500
	w, reg, col, queries, baseline := buildFaultySegments(t, half)
	defer w.Close()
	s := w.Searcher()

	for _, name := range reg.names {
		dev := reg.dev(name)
		for id := storage.PageID(1); id <= 1<<14; id++ {
			dev.FailPage(id, 1)
		}
	}
	for i, q := range queries {
		res, err := s.Search(queryNames(col, q), 10)
		if err != nil {
			t.Fatalf("query %d: transient faults must be absorbed: %v", i, err)
		}
		if !res.Exact || res.Degraded {
			t.Fatalf("query %d degraded under one-shot transient faults: %+v", i, res.Cert)
		}
		assertSameTop(t, "retried vs baseline", res.Top, baseline[i])
	}
	fs := w.FaultStats()
	if fs.ReadRetries == 0 {
		t.Fatal("no retry recorded — every read was cache-served, the test surface is gone")
	}
	if fs.ReadFaults != 0 || fs.QuarantinedSegments != 0 || fs.DegradedQueries != 0 {
		t.Fatalf("FaultStats = %+v, want all faults absorbed", fs)
	}
}

// TestReverifyKeepsSickSegmentsOut: re-verification must not return a
// segment whose device still fails — recovery happens when the fault
// actually clears, not on a timer's optimism.
func TestReverifyKeepsSickSegmentsOut(t *testing.T) {
	const half = 2500
	w, reg, col, queries, _ := buildFaultySegments(t, half)
	defer w.Close()
	s := w.Searcher()

	sick := reg.names[1]
	reg.dev(sick).FailAll(true)
	for _, q := range queries {
		if _, err := s.Search(queryNames(col, q), 10); err != nil {
			t.Fatal(err)
		}
	}
	if fs := w.FaultStats(); fs.QuarantinedSegments != 1 {
		t.Fatalf("FaultStats = %+v, want the sick segment quarantined", fs)
	}
	if n := w.Reverify(); n != 0 {
		t.Fatalf("Reverify recovered %d segments while the device still fails", n)
	}
	if fs := w.FaultStats(); fs.QuarantinedSegments != 1 || fs.Recovered != 0 {
		t.Fatalf("FaultStats = %+v, want the segment still out of service", fs)
	}
	reg.dev(sick).Clear()
	if n := w.Reverify(); n != 1 {
		t.Fatalf("Reverify recovered %d segments after the fault cleared, want 1", n)
	}
}
