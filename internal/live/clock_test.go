package live

import (
	"testing"
	"time"
)

// fakeClock delivers ticks only when the test fires them, making the
// flush timer's behavior deterministic — no sleeps, no flaky timing.
type fakeClock struct {
	ch      chan time.Time
	started chan time.Duration // delivers the interval NewTicker was asked for
	stopped chan struct{}
}

func newFakeClock() *fakeClock {
	return &fakeClock{ch: make(chan time.Time), started: make(chan time.Duration, 1), stopped: make(chan struct{})}
}

func (f *fakeClock) NewTicker(d time.Duration) Ticker {
	f.started <- d
	return f
}

func (f *fakeClock) Chan() <-chan time.Time { return f.ch }
func (f *fakeClock) Stop()                  { close(f.stopped) }

// tick fires one tick, blocking until the flush loop receives it — the
// synchronization that makes the test deterministic: once a second tick
// is accepted, the flush triggered by the first has completed (the loop
// handles ticks strictly in sequence).
func (f *fakeClock) tick(t *testing.T) {
	t.Helper()
	select {
	case f.ch <- time.Time{}:
	case <-time.After(10 * time.Second):
		t.Fatal("flush loop never received the tick")
	}
}

// TestFlushTimerDeterministic drives the seal timer with an injected
// clock: buffered documents must become searchable exactly when a tick
// fires (and the buffer is non-empty), never spontaneously.
func TestFlushTimerDeterministic(t *testing.T) {
	col := genCollection(t, 40, 77)
	clk := newFakeClock()
	w, err := Open(Config{
		Dir:        t.TempDir(),
		SealDocs:   1 << 20, // only the timer can seal
		FlushEvery: time.Hour,
		Clock:      clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-clk.started:
		if d != time.Hour {
			t.Fatalf("flush loop asked for a %v ticker, want FlushEvery", d)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("flush loop never created its ticker")
	}
	streamInto(t, w, col)

	snap, err := w.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if snap.NumDocs() != 0 {
		t.Fatalf("documents visible before any tick: %d", snap.NumDocs())
	}
	snap.Close()

	// First tick starts the flush; a second tick being accepted proves
	// it finished (the loop is sequential), so no polling is needed.
	clk.tick(t)
	clk.tick(t)
	snap2, err := w.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if snap2.NumDocs() != len(col.Docs) {
		t.Fatalf("after tick %d docs visible, want %d", snap2.NumDocs(), len(col.Docs))
	}
	snap2.Close()
	if st := w.Stats(); st.Seals == 0 || st.BufferedDocs != 0 {
		t.Fatalf("tick did not seal: %+v", st)
	}

	// Ticks over an empty buffer must not seal empty segments.
	seals := w.Stats().Seals
	clk.tick(t)
	clk.tick(t)
	if st := w.Stats(); st.Seals != seals {
		t.Fatalf("empty-buffer tick sealed a segment: %+v", st)
	}

	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-clk.stopped:
	default:
		t.Fatal("Close did not stop the injected ticker")
	}
}
