package live

import (
	"math"
	"testing"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/rank"
	"repro/internal/storage"
)

// genCollection builds the deterministic corpus the live tests stream.
func genCollection(t testing.TB, docs int, seed uint64) *collection.Collection {
	t.Helper()
	col, err := collection.Generate(collection.Config{
		NumDocs: docs, VocabSize: 6000, MeanDocLen: 90, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return col
}

func genQueries(t testing.TB, col *collection.Collection, seed uint64) []collection.Query {
	t.Helper()
	qs, err := collection.GenerateQueries(col, collection.QueryConfig{
		NumQueries: 25, MinTerms: 2, MaxTerms: 6, MaxDocFreqFrac: 0.3, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return qs
}

// docTerms converts one collection document into the writer's term-bag
// input.
func docTerms(col *collection.Collection, d *collection.Document) []TermCount {
	out := make([]TermCount, len(d.Terms))
	for i, tf := range d.Terms {
		out[i] = TermCount{Term: col.Lex.Name(tf.Term), TF: tf.TF}
	}
	return out
}

// queryNames maps a collection query to term strings.
func queryNames(col *collection.Collection, q collection.Query) []string {
	out := make([]string, len(q.Terms))
	for i, term := range q.Terms {
		out[i] = col.Lex.Name(term)
	}
	return out
}

// streamInto feeds every document of col through the writer in id
// order, asserting the assigned global ids match the collection's.
func streamInto(t testing.TB, w *Writer, col *collection.Collection) {
	t.Helper()
	for i := range col.Docs {
		id, err := w.Add(docTerms(col, &col.Docs[i]))
		if err != nil {
			t.Fatal(err)
		}
		if id != col.Docs[i].ID {
			t.Fatalf("doc %d assigned global id %d", col.Docs[i].ID, id)
		}
	}
}

// assertSameTop asserts two rankings agree: identical documents in
// identical order, scores within float addition-order noise.
func assertSameTop(t *testing.T, label string, got, want []rank.DocScore) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].DocID != want[i].DocID {
			t.Fatalf("%s: position %d is doc %d, want %d (scores %v vs %v)",
				label, i, got[i].DocID, want[i].DocID, got[i].Score, want[i].Score)
		}
		if d := math.Abs(got[i].Score - want[i].Score); d > 1e-9 {
			t.Fatalf("%s: score mismatch at %d: %v vs %v", label, i, got[i].Score, want[i].Score)
		}
	}
}

// TestLiveEquivalence is the acceptance test of the live layer:
// documents streamed through the Writer — sealing many segments and
// observing background merges — must answer every query byte-identically
// to a one-shot build over the same corpus, across all three engine
// families (MaxScore, the fragmented Engine in full mode, and the
// Progressive chain).
func TestLiveEquivalence(t *testing.T) {
	col := genCollection(t, 900, 7)
	queries := genQueries(t, col, 8)

	w, err := Open(Config{
		Dir:             t.TempDir(),
		SealDocs:        100,
		MergeFanIn:      3,
		BackgroundMerge: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	streamInto(t, w, col)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	w.WaitMergeIdle()
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.Merges == 0 {
		t.Fatalf("no background merge observed (stats %+v); the test must cover compaction", st)
	}
	if st.DocsSealed != int64(len(col.Docs)) || st.BufferedDocs != 0 {
		t.Fatalf("sealed %d docs with %d buffered, want %d/0", st.DocsSealed, st.BufferedDocs, len(col.Docs))
	}

	// One-shot baselines over the identical corpus.
	pool, err := storage.NewPool(storage.NewDisk(), 1<<15)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := index.Build(col, pool)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := core.NewMaxScore(idx, rank.NewBM25())
	if err != nil {
		t.Fatal(err)
	}
	fx, err := index.BuildFragmented(col, pool, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := core.NewEngine(fx, rank.NewBM25())
	if err != nil {
		t.Fatal(err)
	}
	mx, err := index.BuildMulti(col, pool, []float64{0.05, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := core.NewProgressive(mx, rank.NewBM25())
	if err != nil {
		t.Fatal(err)
	}

	const n = 10
	searcher := w.Searcher()
	for _, q := range queries {
		live, err := searcher.Search(queryNames(col, q), n)
		if err != nil {
			t.Fatal(err)
		}
		if !live.Exact {
			t.Fatalf("query %d: live merge lost its exactness certificate", q.ID)
		}

		msTop, err := ms.Search(q, n)
		if err != nil {
			t.Fatal(err)
		}
		assertSameTop(t, "vs MaxScore", live.Top, msTop)

		full, err := engine.Search(q, core.Options{N: n, Mode: core.ModeFull})
		if err != nil {
			t.Fatal(err)
		}
		assertSameTop(t, "vs Engine/full", live.Top, full.Top)

		pr, err := prog.Search(q, core.ProgressiveOptions{N: n})
		if err != nil {
			t.Fatal(err)
		}
		if !pr.Exact {
			t.Fatalf("query %d: progressive baseline not exact", q.ID)
		}
		assertSameTop(t, "vs Progressive", live.Top, pr.Top)
	}
}

// TestLiveReopen: closing and reopening the live directory must restore
// the exact searchable state (manifest, segments, master lexicon), and
// the reopened writer must keep accepting documents.
func TestLiveReopen(t *testing.T) {
	col := genCollection(t, 400, 11)
	queries := genQueries(t, col, 12)
	dir := t.TempDir()
	cfg := Config{Dir: dir, SealDocs: 64, MergeFanIn: 3, BackgroundMerge: true}

	w, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	half := len(col.Docs) / 2
	for i := 0; i < half; i++ {
		if _, err := w.Add(docTerms(col, &col.Docs[i])); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	w.WaitMergeIdle()
	const n = 10
	want := make([][]rank.DocScore, len(queries))
	s := w.Searcher()
	for i, q := range queries {
		res, err := s.Search(queryNames(col, q), n)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.Top
	}
	stBefore := w.Stats()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: same answers, then stream the rest and verify against a
	// one-shot build over the full corpus.
	w2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if got := w2.Stats(); got.DocsSealed != stBefore.DocsSealed || got.Segments != stBefore.Segments {
		t.Fatalf("reopened stats %+v, want sealed/segments of %+v", got, stBefore)
	}
	s2 := w2.Searcher()
	for i, q := range queries {
		res, err := s2.Search(queryNames(col, q), n)
		if err != nil {
			t.Fatal(err)
		}
		assertSameTop(t, "reopen", res.Top, want[i])
	}
	for i := half; i < len(col.Docs); i++ {
		if id, err := w2.Add(docTerms(col, &col.Docs[i])); err != nil {
			t.Fatal(err)
		} else if id != uint32(i) {
			t.Fatalf("doc %d assigned id %d after reopen", i, id)
		}
	}
	if err := w2.Flush(); err != nil {
		t.Fatal(err)
	}
	w2.WaitMergeIdle()

	pool, err := storage.NewPool(storage.NewDisk(), 1<<15)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := index.Build(col, pool)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := core.NewMaxScore(idx, rank.NewBM25())
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		res, err := s2.Search(queryNames(col, q), n)
		if err != nil {
			t.Fatal(err)
		}
		wantTop, err := ms.Search(q, n)
		if err != nil {
			t.Fatal(err)
		}
		assertSameTop(t, "reopen+append", res.Top, wantTop)
	}
}

// TestMergeSnapshotExcludesBufferedStats: a merge must persist term
// statistics covering exactly the sealed documents. Regression test: a
// merge running while documents sit unsealed in the buffer makes the
// merged segment the highest-seq authority the master lexicon reopens
// from; if it leaked the buffered documents' DocFreq/CollFreq, a
// Close-without-Flush (the crash shape) would resurrect statistics of
// documents that no longer exist — and re-adding those documents would
// double-count them.
func TestMergeSnapshotExcludesBufferedStats(t *testing.T) {
	col := genCollection(t, 300, 81)
	queries := genQueries(t, col, 82)
	dir := t.TempDir()
	cfg := Config{Dir: dir, SealDocs: 50, MergeFanIn: 4}
	w, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const sealed = 200 // 4 × SealDocs: seals exactly at the boundary
	for i := 0; i < sealed; i++ {
		if _, err := w.Add(docTerms(col, &col.Docs[i])); err != nil {
			t.Fatal(err)
		}
	}
	// A tail strictly under SealDocs: recorded into the master lexicon
	// but never sealed.
	for i := sealed; i < sealed+49; i++ {
		if _, err := w.Add(docTerms(col, &col.Docs[i])); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.MergeAll(); err != nil {
		t.Fatal(err)
	}
	if st := w.Stats(); st.BufferedDocs != 49 {
		t.Fatalf("test setup broken: %d buffered docs, want 49 (%+v)", st.BufferedDocs, st)
	}
	if w.Stats().Merges == 0 {
		t.Fatal("merge did not run; the test needs a merged segment as the reopen authority")
	}
	if err := w.Close(); err != nil { // discards the buffered tail
		t.Fatal(err)
	}

	// Reopened state must rank exactly like a one-shot build over the
	// sealed prefix — no phantom statistics from the lost tail.
	prefix, err := collection.Generate(collection.Config{
		NumDocs: sealed, VocabSize: 6000, MeanDocLen: 90, Seed: 81,
	})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := storage.NewPool(storage.NewDisk(), 1<<15)
	if err != nil {
		t.Fatal(err)
	}
	prefixIdx, err := index.Build(prefix, pool)
	if err != nil {
		t.Fatal(err)
	}
	prefixMS, err := core.NewMaxScore(prefixIdx, rank.NewBM25())
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	s2 := w2.Searcher()
	const n = 10
	for _, q := range queries {
		res, err := s2.Search(queryNames(col, q), n)
		if err != nil {
			t.Fatal(err)
		}
		want, err := prefixMS.Search(q, n)
		if err != nil {
			t.Fatal(err)
		}
		assertSameTop(t, "reopen after lost buffer", res.Top, want)
	}

	// Re-adding the lost tail must land on the full-corpus statistics —
	// no double counting.
	for i := sealed; i < len(col.Docs); i++ {
		if _, err := w2.Add(docTerms(col, &col.Docs[i])); err != nil {
			t.Fatal(err)
		}
	}
	if err := w2.Flush(); err != nil {
		t.Fatal(err)
	}
	fullIdx, err := index.Build(col, pool)
	if err != nil {
		t.Fatal(err)
	}
	fullMS, err := core.NewMaxScore(fullIdx, rank.NewBM25())
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		res, err := s2.Search(queryNames(col, q), n)
		if err != nil {
			t.Fatal(err)
		}
		want, err := fullMS.Search(q, n)
		if err != nil {
			t.Fatal(err)
		}
		assertSameTop(t, "re-added tail", res.Top, want)
	}
}

// TestLiveVisibility: buffered documents become searchable at the next
// seal, not before — the documented near-real-time contract.
func TestLiveVisibility(t *testing.T) {
	col := genCollection(t, 50, 21)
	w, err := Open(Config{Dir: t.TempDir(), SealDocs: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	streamInto(t, w, col)
	snap, err := w.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if snap.NumDocs() != 0 {
		t.Fatalf("unsealed documents visible: %d", snap.NumDocs())
	}
	snap.Close()
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	snap2, err := w.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	defer snap2.Close()
	if snap2.NumDocs() != len(col.Docs) {
		t.Fatalf("after flush %d docs visible, want %d", snap2.NumDocs(), len(col.Docs))
	}
	if snap2.Generation() <= snap.Generation() {
		t.Fatalf("flush did not advance the generation: %d -> %d", snap.Generation(), snap2.Generation())
	}
}

// BenchmarkLiveIngest measures Add throughput including amortized
// seals and deterministic merges.
func BenchmarkLiveIngest(b *testing.B) {
	col := genCollection(b, 600, 71)
	w, err := Open(Config{Dir: b.TempDir(), SealDocs: 200, MergeFanIn: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	docs := make([][]TermCount, len(col.Docs))
	for i := range col.Docs {
		docs[i] = docTerms(col, &col.Docs[i])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Add(docs[i%len(docs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLiveSearch measures snapshot search latency over a merged
// multi-segment chain.
func BenchmarkLiveSearch(b *testing.B) {
	col := genCollection(b, 600, 72)
	queries := genQueries(b, col, 73)
	w, err := Open(Config{Dir: b.TempDir(), SealDocs: 100, MergeFanIn: 3})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	for i := range col.Docs {
		if _, err := w.Add(docTerms(col, &col.Docs[i])); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
	if err := w.MergeAll(); err != nil {
		b.Fatal(err)
	}
	names := make([][]string, len(queries))
	for i, q := range queries {
		names[i] = queryNames(col, q)
	}
	s := w.Searcher()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Search(names[i%len(names)], 10); err != nil {
			b.Fatal(err)
		}
	}
}

// TestLiveAddValidation: malformed documents are rejected without
// mutating state.
func TestLiveAddValidation(t *testing.T) {
	w, err := Open(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.Add(nil); err == nil {
		t.Fatal("empty document accepted")
	}
	if _, err := w.Add([]TermCount{{Term: "a", TF: 0}}); err == nil {
		t.Fatal("zero tf accepted")
	}
	// Duplicate terms coalesce into one posting.
	if _, err := w.Add([]TermCount{{Term: "a", TF: 2}, {Term: "a", TF: 3}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	s := w.Searcher()
	res, err := s.Search([]string{"a"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Top) != 1 || res.Top[0].DocID != 0 {
		t.Fatalf("coalesced doc not found: %+v", res.Top)
	}
}
