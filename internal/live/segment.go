package live

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"repro/internal/blockcache"
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/lexicon"
	"repro/internal/postings"
	"repro/internal/rank"
	"repro/internal/storage"
)

// segment is one immutable on-disk segment of the live index, opened
// through its own buffer pool. Segments are shared across generations
// and refcounted by them: release drops one reference, and the last
// release closes the files — and deletes the directory when the segment
// was merged away (dead).
//
// The postings and sidecar files never change after the segment is
// persisted, with one exception: deletions write a new alive-bitmap
// version file next to them and swap the in-memory pointer (alive /
// aliveVer, guarded by the writer mutex). The bitmap value itself is
// immutable — a deletion clones it — so generations that captured an
// older pointer keep their deletion view.
type segment struct {
	seq uint64 // creation sequence; names the directory, unique forever
	// snap is the ordinal of the lexicon snapshot the segment persists:
	// seals increment it at buffer capture, merges inherit the ordinal
	// of the seal snapshot they re-persist. The max-snap segment's
	// lexicon is authoritative on reopen — seq cannot play that role,
	// because a merge can take a higher seq than a concurrently in-
	// flight seal while persisting an older snapshot. Snapshots are
	// purge-agnostic: they count every document ever sealed, and the
	// tombstone ledger subtracts the dead at generation install.
	snap uint64
	name string // directory name under the live dir, e.g. "seg-000007"
	dir  string // absolute directory path
	base uint32 // global id of the segment's first document
	// docs is the segment's document-id span — including tombstoned and
	// purged ids, which stay as holes so surviving documents keep their
	// global ids forever.
	docs int

	// postings/bytes cache the merge planner's cost-model inputs so
	// planning never rescans the meta table under the writer lock.
	postings int64
	bytes    int64

	// lastPoolReads/lastPoolNanos are the high-water marks of the
	// segment pool's physical-read latency counters already fed to the
	// tuner (guarded by the writer mutex; see samplePoolLatencyLocked).
	lastPoolReads int64
	lastPoolNanos int64

	// Deletion state, guarded by the writer mutex. alive is nil when
	// every stored document is alive; aliveVer is the persisted bitmap
	// version the manifest references (0 = none). aliveDocs/aliveTokens
	// are the corpus-statistics contribution of the survivors, and
	// purgeable counts documents that are dead but still physically
	// stored (DocLen > 0) — what a purge rewrite would reclaim.
	alive       *postings.AliveBitmap
	aliveVer    uint64
	aliveDocs   int
	aliveTokens int64
	purgeable   int

	idx *index.Index
	fwd *fwdSidecar
	fd  *storage.FileDisk
	// pool is the segment's private page cache; its retry and fault
	// counters are the segment's read-health account. vdev is the
	// checksum layer under it, primed at open — Reverify's probe.
	pool *storage.Pool
	vdev *storage.VerifiedDevice
	refs atomic.Int32
	dead atomic.Bool // merged away: delete the directory on last release

	// quarantined marks the segment unservable after a data fault:
	// searches skip it (degrading their certificate), the merge planner
	// avoids it, and Reverify returns it to service once a full re-read
	// checks out. qerr holds the fault that tripped it.
	quarantined atomic.Bool
	qerr        atomic.Value
}

// quarantine marks the segment unservable. It reports whether this call
// made the transition, so exactly one caller counts it.
func (s *segment) quarantine(err error) bool {
	if s.quarantined.CompareAndSwap(false, true) {
		s.qerr.Store(err)
		return true
	}
	return false
}

// segmentName formats the directory name for sequence number seq.
func segmentName(seq uint64) string { return fmt.Sprintf("seg-%06d", seq) }

// aliveName formats the alive-bitmap sidecar file name for version ver.
func aliveName(ver uint64) string { return fmt.Sprintf("alive-%06d.bm", ver) }

// openSegment opens the persisted segment named name under cfg.Dir with
// a private pool of cfg.PoolPages frames, loading its alive bitmap
// (version tomb; 0 means all stored documents are alive) and forward
// sidecar. The returned segment holds one reference (the opener's).
//
// The device chain under the pool is: the raw segment file, the
// optional cfg.WrapDevice wrapper (the fault-injection seam), and a
// page-checksum layer primed here. The priming pass is trusted because
// index.Open below streams every section through the pool verifying the
// persisted section CRCs — the bytes the priming records are exactly
// the bytes those checksums vouch for. Any later read that disagrees
// with the primed checksum fails as a transient storage.ReadFault: the
// pool's retry absorbs one-off flips, and persistent corruption escapes
// the budget into the quarantine path.
// When bc is non-nil, the opened index reads postings blocks through
// the shared hot-block cache under the segment's sequence number as its
// space tag (unique forever, so a recycled cache entry can never serve
// another segment's bytes).
func openSegment(cfg Config, name string, seq, snap uint64, base uint32, tomb uint64, bc *blockcache.Cache) (*segment, error) {
	dir := filepath.Join(cfg.Dir, name)
	fd, err := storage.OpenFileDisk(index.SegmentPath(dir))
	if err != nil {
		return nil, fmt.Errorf("live: open segment %s: %w", name, err)
	}
	ok := false
	defer func() {
		if !ok {
			if cerr := fd.Close(); cerr != nil {
				cleanupLogf("live: closing segment %s after failed open: %v", name, cerr)
			}
		}
	}()
	var dev storage.Device = fd
	if cfg.WrapDevice != nil {
		dev = cfg.WrapDevice(name, dev)
	}
	vd := storage.NewVerifiedDevice(dev, fd.NumPages())
	if err := vd.Prime(); err != nil {
		return nil, fmt.Errorf("live: open segment %s: %w", name, err)
	}
	pool, err := storage.NewPool(vd, cfg.PoolPages)
	if err != nil {
		return nil, fmt.Errorf("live: open segment %s: %w", name, err)
	}
	idx, err := index.Open(dir, pool)
	if err != nil {
		return nil, fmt.Errorf("live: open segment %s: %w", name, err)
	}
	if bc != nil {
		idx.SetBlockCache(bc, seq)
	}
	fwd, err := openDocTerms(dir, idx.Stats.NumDocs)
	if errors.Is(err, os.ErrNotExist) && tomb == 0 {
		// A segment persisted before the delete path existed has no
		// forward sidecar (and, with no bitmap version, no tombstones
		// whose statistics could depend on one). Upgrade in place: the
		// inverted lists hold exactly the information the sidecar
		// inverts, so one scan rebuilds it and the directory becomes a
		// current-format segment.
		if err = rebuildFwdSidecar(dir, idx); err == nil {
			fwd, err = openDocTerms(dir, idx.Stats.NumDocs)
		}
	}
	if err != nil {
		return nil, fmt.Errorf("live: open segment %s: %w", name, err)
	}
	defer func() {
		if !ok {
			if cerr := fwd.close(); cerr != nil {
				cleanupLogf("live: closing sidecar of segment %s after failed open: %v", name, cerr)
			}
		}
	}()
	s := &segment{
		seq: seq, snap: snap, name: name, dir: dir, base: base,
		docs:     idx.Stats.NumDocs,
		postings: idx.TotalPostings(),
		bytes:    idx.SizeBytes(),
		idx:      idx, fwd: fwd, fd: fd, pool: pool, vdev: vd,
	}
	if tomb > 0 {
		bm, err := index.ReadAlive(filepath.Join(dir, aliveName(tomb)), s.docs)
		if err != nil {
			return nil, fmt.Errorf("live: open segment %s: %w", name, err)
		}
		s.alive = bm
		s.aliveVer = tomb
	}
	s.recountAlive()
	s.refs.Store(1)
	ok = true
	return s, nil
}

// recountAlive derives aliveDocs/aliveTokens/purgeable from the current
// bitmap and the document lengths. A zero document length marks a hole
// (purged, or deleted while still buffered) whose postings no longer
// exist; a dead document with a positive length still stores postings
// and is purgeable. Callers hold the writer mutex.
func (s *segment) recountAlive() {
	s.aliveDocs, s.aliveTokens, s.purgeable = 0, 0, 0
	for id, dl := range s.idx.Stats.DocLens {
		if s.alive == nil || s.alive.Alive(uint32(id)) {
			s.aliveDocs++
			s.aliveTokens += int64(dl)
		} else if dl > 0 {
			s.purgeable++
		}
	}
}

// acquire takes one reference.
func (s *segment) acquire() { s.refs.Add(1) }

// release drops one reference; the last reference closes the backing
// files and, for merged-away segments, deletes the directory. Failures
// here are best-effort — a failed delete leaves a stale directory that
// the next Open garbage-collects — but they are logged, not swallowed:
// a close or unlink erroring is a disk telling on itself.
func (s *segment) release() {
	if s.refs.Add(-1) != 0 {
		return
	}
	if err := s.fwd.close(); err != nil {
		cleanupLogf("live: closing sidecar of segment %s: %v", s.name, err)
	}
	if err := s.fd.Close(); err != nil {
		cleanupLogf("live: closing segment %s: %v", s.name, err)
	}
	if s.dead.Load() {
		if err := os.RemoveAll(s.dir); err != nil {
			cleanupLogf("live: deleting merged-away segment %s: %v (reopen GC will retry)", s.dir, err)
		}
	}
}

// generation is one immutable searchable state: the segment chain at a
// commit point, the frozen lexicon snapshot (tombstone ledger already
// subtracted, so it covers exactly the alive documents), the corpus
// statistics over those documents, the per-segment deletion views
// captured at install, and one MaxScore engine per segment ranking with
// all of it. Searches acquire a generation, evaluate, and release; the
// writer holds one reference for as long as the generation is current.
type generation struct {
	id      uint64
	lex     *lexicon.Lexicon
	corpus  rank.CorpusStat
	segs    []*segment
	engines []*core.MaxScoreEngine
	refs    atomic.Int64
}

// newGeneration assembles a generation over segs, acquiring one segment
// reference each and building the per-segment engines against the
// frozen lexicon, corpus, and each segment's current alive bitmap (the
// capture that makes a deletion committed after install invisible to
// this generation's searches). On error the acquired references are
// returned.
func newGeneration(id uint64, lex *lexicon.Lexicon, corpus rank.CorpusStat, segs []*segment, scorer rank.Scorer) (*generation, error) {
	g := &generation{id: id, lex: lex, corpus: corpus, segs: segs}
	g.refs.Store(1)
	for i, s := range segs {
		view, err := s.idx.WithLexicon(lex)
		if err == nil {
			view, err = view.WithAlive(s.alive)
		}
		if err == nil {
			var e *core.MaxScoreEngine
			e, err = core.NewMaxScoreWithCorpus(view, scorer, corpus)
			g.engines = append(g.engines, e)
		}
		if err != nil {
			for _, held := range segs[:i] {
				held.release()
			}
			return nil, fmt.Errorf("live: generation %d segment %s: %w", id, s.name, err)
		}
		s.acquire()
	}
	return g, nil
}

// release drops one reference; the last reference releases every
// segment.
func (g *generation) release() {
	if g.refs.Add(-1) != 0 {
		return
	}
	for _, s := range g.segs {
		s.release()
	}
}
