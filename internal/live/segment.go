package live

import (
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/lexicon"
	"repro/internal/rank"
	"repro/internal/storage"
)

// segment is one immutable on-disk segment of the live index, opened
// through its own buffer pool. Segments are shared across generations
// and refcounted by them: release drops one reference, and the last
// release closes the file — and deletes the directory when the segment
// was merged away (dead).
type segment struct {
	seq uint64 // creation sequence; names the directory, unique forever
	// snap is the ordinal of the lexicon snapshot the segment persists:
	// seals increment it at buffer capture, merges inherit the ordinal
	// of the seal snapshot they re-persist. The max-snap segment's
	// lexicon is authoritative on reopen — seq cannot play that role,
	// because a merge can take a higher seq than a concurrently in-
	// flight seal while persisting an older snapshot.
	snap uint64
	name string // directory name under the live dir, e.g. "seg-000007"
	dir  string // absolute directory path
	base uint32 // global id of the segment's first document
	docs int

	// postings/bytes cache the merge planner's cost-model inputs so
	// planning never rescans the meta table under the writer lock.
	postings int64
	bytes    int64

	idx  *index.Index
	fd   *storage.FileDisk
	refs atomic.Int32
	dead atomic.Bool // merged away: delete the directory on last release
}

// segmentName formats the directory name for sequence number seq.
func segmentName(seq uint64) string { return fmt.Sprintf("seg-%06d", seq) }

// openSegment opens the persisted segment named name under liveDir with
// a private pool of poolPages frames. The returned segment holds one
// reference (the opener's).
func openSegment(liveDir, name string, seq, snap uint64, base uint32, poolPages int) (*segment, error) {
	dir := filepath.Join(liveDir, name)
	pool, fd, err := index.OpenPool(dir, poolPages)
	if err != nil {
		return nil, fmt.Errorf("live: open segment %s: %w", name, err)
	}
	idx, err := index.Open(dir, pool)
	if err != nil {
		fd.Close()
		return nil, fmt.Errorf("live: open segment %s: %w", name, err)
	}
	s := &segment{
		seq: seq, snap: snap, name: name, dir: dir, base: base,
		docs:     idx.Stats.NumDocs,
		postings: idx.TotalPostings(),
		bytes:    idx.SizeBytes(),
		idx:      idx, fd: fd,
	}
	s.refs.Store(1)
	return s, nil
}

// acquire takes one reference.
func (s *segment) acquire() { s.refs.Add(1) }

// release drops one reference; the last reference closes the backing
// file and, for merged-away segments, deletes the directory. Errors are
// best-effort: a failed delete leaves a stale directory that the next
// Open garbage-collects.
func (s *segment) release() {
	if s.refs.Add(-1) != 0 {
		return
	}
	s.fd.Close()
	if s.dead.Load() {
		os.RemoveAll(s.dir)
	}
}

// generation is one immutable searchable state: the segment chain at a
// commit point, the frozen lexicon snapshot providing term statistics,
// the corpus statistics over all sealed documents, and one MaxScore
// engine per segment ranking with both. Searches acquire a generation,
// evaluate, and release; the writer holds one reference for as long as
// the generation is current.
type generation struct {
	id      uint64
	lex     *lexicon.Lexicon
	corpus  rank.CorpusStat
	segs    []*segment
	engines []*core.MaxScoreEngine
	refs    atomic.Int64
}

// newGeneration assembles a generation over segs, acquiring one segment
// reference each and building the per-segment engines against the
// frozen lexicon and corpus. On error the acquired references are
// returned.
func newGeneration(id uint64, lex *lexicon.Lexicon, corpus rank.CorpusStat, segs []*segment, scorer rank.Scorer) (*generation, error) {
	g := &generation{id: id, lex: lex, corpus: corpus, segs: segs}
	g.refs.Store(1)
	for i, s := range segs {
		view, err := s.idx.WithLexicon(lex)
		if err == nil {
			var e *core.MaxScoreEngine
			e, err = core.NewMaxScoreWithCorpus(view, scorer, corpus)
			g.engines = append(g.engines, e)
		}
		if err != nil {
			for _, held := range segs[:i] {
				held.release()
			}
			return nil, fmt.Errorf("live: generation %d segment %s: %w", id, s.name, err)
		}
		s.acquire()
	}
	return g, nil
}

// release drops one reference; the last reference releases every
// segment.
func (g *generation) release() {
	if g.refs.Add(-1) != 0 {
		return
	}
	for _, s := range g.segs {
		s.release()
	}
}
