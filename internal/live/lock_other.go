//go:build !unix

package live

import (
	"fmt"
	"os"
	"path/filepath"
)

// lockFileName is the advisory inter-process lock inside a live
// directory (not seg-* prefixed, so GC never touches it).
const lockFileName = "live.lock"

// lockDir on non-Unix platforms has no flock; the lock file is still
// created (so the directory layout matches) but the single-writer
// guarantee is the operator's responsibility. The best-effort
// alternative — O_EXCL creation — would wedge the directory after a
// crash, which is worse than no lock for this package's crash-recovery
// contract.
func lockDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, lockFileName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("live: lock: %w", err)
	}
	return f, nil
}
