package blockcache

import (
	"bytes"
	"fmt"
	"testing"
)

func TestGetAdmitRoundTrip(t *testing.T) {
	c := New(1 << 20)
	if _, ok := c.Get(1, 100, 4); ok {
		t.Fatal("hit on an empty cache")
	}
	c.Admit(1, 100, []byte{1, 2, 3, 4})
	got, ok := c.Get(1, 100, 4)
	if !ok || !bytes.Equal(got, []byte{1, 2, 3, 4}) {
		t.Fatalf("Get = %v, %v after Admit", got, ok)
	}
	// Same offset, different length or space: distinct keys.
	if _, ok := c.Get(1, 100, 3); ok {
		t.Fatal("length is not part of the key")
	}
	if _, ok := c.Get(2, 100, 4); ok {
		t.Fatal("space is not part of the key")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 3 || st.Admits != 1 || st.Entries != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.Bytes != 4+entryOverhead {
		t.Fatalf("bytes accounting %d", st.Bytes)
	}
}

func TestAdmitCopies(t *testing.T) {
	c := New(1 << 20)
	b := []byte{9, 9, 9}
	c.Admit(7, 0, b)
	b[0] = 1
	got, ok := c.Get(7, 0, 3)
	if !ok || got[0] != 9 {
		t.Fatalf("cache shares the caller's buffer: %v %v", got, ok)
	}
}

func TestOversizedRejected(t *testing.T) {
	c := New(1 << 10) // maxEntry well below 4KB
	big := make([]byte, 4096)
	c.Admit(1, 0, big)
	if _, ok := c.Get(1, 0, len(big)); ok {
		t.Fatal("oversized range admitted")
	}
	if st := c.Stats(); st.Rejects == 0 || st.Admits != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestCapacityBoundAndAdmission(t *testing.T) {
	c := New(64 << 10)
	blk := make([]byte, 512)
	// Fill far past capacity with one-hit wonders; the byte budget must
	// hold regardless.
	for i := 0; i < 4096; i++ {
		c.Get(3, int64(i)*512, 512) // record in the sketch
		c.Admit(3, int64(i)*512, blk)
	}
	st := c.Stats()
	if st.Bytes > 64<<10 {
		t.Fatalf("over budget: %d bytes resident", st.Bytes)
	}
	if st.Entries == 0 {
		t.Fatal("nothing resident at all")
	}
}

func TestHotEntrySurvivesScan(t *testing.T) {
	c := New(8 << 10)
	hot := []byte("hot-block-payload")
	// Make the hot range genuinely frequent in the sketch.
	for i := 0; i < 32; i++ {
		c.Get(1, 0, len(hot))
	}
	c.Admit(1, 0, hot)
	// A cold scan: each range seen once. Admission must not let it
	// displace the hot entry.
	blk := make([]byte, 700)
	for i := 1; i <= 256; i++ {
		c.Get(2, int64(i)*1000, len(blk))
		c.Admit(2, int64(i)*1000, blk)
	}
	if _, ok := c.Get(1, 0, len(hot)); !ok {
		t.Fatal("a one-pass cold scan evicted the hot entry")
	}
}

func TestPurgeSpace(t *testing.T) {
	c := New(1 << 20)
	for i := 0; i < 50; i++ {
		c.Admit(uint64(i%2), int64(i)*64, []byte{byte(i)})
	}
	c.PurgeSpace(0)
	for i := 0; i < 50; i++ {
		_, ok := c.Get(uint64(i%2), int64(i)*64, 1)
		if want := i%2 == 1; ok != want {
			t.Fatalf("after PurgeSpace(0): entry %d resident=%v want %v", i, ok, want)
		}
	}
	if st := c.Stats(); st.Entries != 25 {
		t.Fatalf("entries after purge: %+v", st)
	}
}

func TestDeterministicCounters(t *testing.T) {
	run := func() Stats {
		c := New(32 << 10)
		blk := make([]byte, 256)
		for round := 0; round < 3; round++ {
			for i := 0; i < 300; i++ {
				off := int64(i%97) * 256
				if _, ok := c.Get(5, off, 256); !ok {
					c.Admit(5, off, blk)
				}
			}
		}
		return c.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same access history, different counters:\n%+v\n%+v", a, b)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(256 << 10)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			blk := []byte(fmt.Sprintf("payload-%d", g))
			for i := 0; i < 2000; i++ {
				off := int64(i % 131)
				if got, ok := c.Get(uint64(g), off, len(blk)); ok {
					if !bytes.Equal(got, blk) {
						panic("cross-goroutine payload corruption")
					}
				} else {
					c.Admit(uint64(g), off, blk)
				}
				if i%500 == 0 {
					c.Stats()
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}
