// Package blockcache is a sharded, byte-bounded cache for immutable
// byte ranges, with TinyLFU-style admission: a count-min sketch of
// recent access frequencies decides whether a missed range is hot
// enough to displace the coldest resident entries. It sits between the
// postings iterators and the buffer pool, caching the raw block bytes
// of hot terms so repeated queries stop faulting the same pages.
//
// Keys are (space, offset, length): space identifies an immutable
// backing region (the live index uses the segment sequence number,
// which is never reused), offset/length the absolute byte range within
// it. Because every space is immutable, entries never go stale — they
// are only ever evicted for capacity or dropped wholesale when their
// space retires (PurgeSpace).
//
// All methods are safe for concurrent use. Under a single-goroutine
// access pattern the hit/miss/admit/evict counters are fully
// deterministic: admission consults only the sketch and the LRU order,
// both of which are functions of the access history.
package blockcache

import (
	"sync"
	"sync/atomic"
)

const (
	shardCount = 8
	// entryOverhead approximates the per-entry bookkeeping cost
	// (struct, map bucket share, LRU links) charged against the byte
	// budget on top of the payload.
	entryOverhead = 96
)

// Key identifies one cached byte range of one immutable space.
type Key struct {
	Space uint64
	Off   int64
	Len   int
}

// hash mixes the key into a 64-bit value. The low bits feed the sketch
// rows, the high bits pick the shard, so the two stay independent.
func (k Key) hash() uint64 {
	h := k.Space*0x9e3779b97f4a7c15 ^ uint64(k.Off)*0xc2b2ae3d27d4eb4f ^ uint64(uint32(k.Len))*0x165667b19e3779f9
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 29
	return h
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Hits    int64 // Get found the range resident
	Misses  int64 // Get did not
	Admits  int64 // Admit accepted the range
	Rejects int64 // Admit declined (victims were hotter, or the range was oversized)
	Evicts  int64 // resident entries displaced by admission or purge
	Bytes   int64 // resident payload + overhead bytes
	Entries int64 // resident entry count
}

// Cache is the sharded cache. Create with New.
type Cache struct {
	hits    atomic.Int64
	misses  atomic.Int64
	admits  atomic.Int64
	rejects atomic.Int64
	evicts  atomic.Int64

	maxEntry int // ranges larger than this are never admitted
	shards   [shardCount]shard
}

type shard struct {
	mu       sync.Mutex
	capacity int64
	bytes    int64
	entries  map[Key]*entry
	head     *entry // most recently used
	tail     *entry // least recently used
	sketch   sketch
}

type entry struct {
	key        Key
	data       []byte
	size       int64
	prev, next *entry
}

// New creates a cache bounded by capacity bytes in total. Ranges larger
// than capacity/(8*shards) are never admitted — a single oversized
// range (a whole-body merge read, say) must not wipe out the hot set.
func New(capacity int64) *Cache {
	if capacity < shardCount {
		capacity = shardCount
	}
	c := &Cache{maxEntry: int(capacity / (8 * shardCount))}
	if c.maxEntry < 1 {
		c.maxEntry = 1
	}
	per := capacity / shardCount
	for i := range c.shards {
		s := &c.shards[i]
		s.capacity = per
		s.entries = make(map[Key]*entry)
		s.sketch.init(per)
	}
	return c
}

// Get returns the cached bytes for (space, off, n) if resident. The
// returned slice is the cache's own immutable copy: callers must treat
// it as read-only, and it stays valid indefinitely (eviction drops the
// cache's reference, not the bytes). A miss records the access in the
// admission sketch so a subsequent Admit of the same range sees its
// frequency.
func (c *Cache) Get(space uint64, off int64, n int) ([]byte, bool) {
	k := Key{Space: space, Off: off, Len: n}
	h := k.hash()
	s := &c.shards[h>>60&(shardCount-1)]
	s.mu.Lock()
	e, ok := s.entries[k]
	if ok {
		s.moveFront(e)
		s.mu.Unlock()
		c.hits.Add(1)
		return e.data, true
	}
	s.sketch.record(h)
	s.mu.Unlock()
	c.misses.Add(1)
	return nil, false
}

// Admit offers the bytes of (space, off, len(b)) for caching. The cache
// copies b, so the caller's buffer may be reused immediately. Oversized
// ranges are rejected outright; otherwise the range is admitted if it
// fits, or if the TinyLFU sketch estimates it at least as hot as every
// LRU-tail victim that would have to go.
func (c *Cache) Admit(space uint64, off int64, b []byte) {
	if len(b) == 0 || len(b) > c.maxEntry {
		c.rejects.Add(1)
		return
	}
	k := Key{Space: space, Off: off, Len: len(b)}
	h := k.hash()
	s := &c.shards[h>>60&(shardCount-1)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.entries[k]; ok {
		return // already resident
	}
	need := int64(len(b)) + entryOverhead
	// Evict from the cold end until the candidate fits — but only while
	// the candidate is at least as hot as the victim. A colder candidate
	// is rejected instead, which is the whole point of admission
	// control: one-hit wonders cannot flush the hot set.
	freq := s.sketch.estimate(h)
	evicted := 0
	for s.bytes+need > s.capacity {
		v := s.tail
		if v == nil {
			c.rejects.Add(1)
			return // candidate alone exceeds shard capacity
		}
		if s.sketch.estimate(v.key.hash()) > freq {
			c.rejects.Add(1)
			return
		}
		s.remove(v)
		evicted++
	}
	data := make([]byte, len(b))
	copy(data, b)
	e := &entry{key: k, data: data, size: need}
	s.entries[k] = e
	s.pushFront(e)
	s.bytes += need
	c.admits.Add(1)
	c.evicts.Add(int64(evicted))
}

// PurgeSpace drops every resident entry of the given space. Callers use
// it when a space retires (a segment merged away) to release the bytes
// promptly instead of waiting for eviction.
func (c *Cache) PurgeSpace(space uint64) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		var purged int64
		for e := s.tail; e != nil; {
			prev := e.prev
			if e.key.Space == space {
				s.remove(e)
				purged++
			}
			e = prev
		}
		s.mu.Unlock()
		c.evicts.Add(purged)
	}
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	st := Stats{
		Hits:    c.hits.Load(),
		Misses:  c.misses.Load(),
		Admits:  c.admits.Load(),
		Rejects: c.rejects.Load(),
		Evicts:  c.evicts.Load(),
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Bytes += s.bytes
		st.Entries += int64(len(s.entries))
		s.mu.Unlock()
	}
	return st
}

// --- intrusive LRU list (callers hold s.mu) ---

func (s *shard) pushFront(e *entry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *shard) moveFront(e *entry) {
	if s.head == e {
		return
	}
	// unlink
	e.prev.next = e.next
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	// relink at head
	e.prev = nil
	e.next = s.head
	s.head.prev = e
	s.head = e
}

func (s *shard) remove(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
	delete(s.entries, e.key)
	s.bytes -= e.size
}

// --- TinyLFU frequency sketch ---

// sketch is a 4-row count-min sketch of 4-bit-equivalent saturating
// uint8 counters with periodic halving: after sampleFactor×width
// recorded accesses every counter is halved, so estimates track recent
// frequency rather than all-time counts (the "Tiny" in TinyLFU).
type sketch struct {
	width   uint64 // power of two
	rows    [4][]uint8
	samples uint64
	reset   uint64
}

const sketchSampleFactor = 8

func (sk *sketch) init(capacityBytes int64) {
	// One counter per ~512 bytes of shard capacity approximates one
	// counter per potential resident block, clamped to keep tiny caches
	// functional and huge ones bounded.
	w := uint64(capacityBytes / 512)
	if w < 256 {
		w = 256
	}
	if w > 1<<16 {
		w = 1 << 16
	}
	// round up to a power of two for mask indexing
	for w&(w-1) != 0 {
		w &= w - 1
	}
	w <<= 1
	sk.width = w
	for i := range sk.rows {
		sk.rows[i] = make([]uint8, w)
	}
	sk.reset = sketchSampleFactor * w
}

// rowIndex derives four independent indexes from one 64-bit hash.
func (sk *sketch) rowIndex(h uint64, row int) uint64 {
	h = h>>uint(row*13) ^ h*0x9e3779b97f4a7c15
	return h & (sk.width - 1)
}

func (sk *sketch) record(h uint64) {
	for i := range sk.rows {
		idx := sk.rowIndex(h, i)
		if sk.rows[i][idx] < 255 {
			sk.rows[i][idx]++
		}
	}
	sk.samples++
	if sk.samples >= sk.reset {
		sk.samples = 0
		for i := range sk.rows {
			row := sk.rows[i]
			for j := range row {
				row[j] >>= 1
			}
		}
	}
}

func (sk *sketch) estimate(h uint64) uint8 {
	min := uint8(255)
	for i := range sk.rows {
		if v := sk.rows[i][sk.rowIndex(h, i)]; v < min {
			min = v
		}
	}
	return min
}
