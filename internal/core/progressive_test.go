package core

import (
	"testing"

	"repro/internal/lexicon"

	"repro/internal/index"
	"repro/internal/quality"
	"repro/internal/rank"
	"repro/internal/storage"
)

func buildMulti(t *testing.T) (*Progressive, *index.MultiFragmented) {
	t.Helper()
	f := fix(t)
	pool, err := storage.NewPool(storage.NewDisk(), 1<<14)
	if err != nil {
		t.Fatal(err)
	}
	mx, err := index.BuildMulti(f.col, pool, []float64{0.05, 0.15, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProgressive(mx, rank.NewBM25())
	if err != nil {
		t.Fatal(err)
	}
	return p, mx
}

func TestBuildMultiPartition(t *testing.T) {
	f := fix(t)
	_, mx := buildMulti(t)
	if len(mx.Fragments) != 4 {
		t.Fatalf("fragments = %d", len(mx.Fragments))
	}
	if mx.TotalPostings() != f.col.Lex.TotalPostings() {
		t.Error("chain postings do not sum to the collection total")
	}
	// Fragment order: df thresholds must be non-decreasing along the
	// chain; check via max df per fragment.
	prevMax := 0
	for fi, frag := range mx.Fragments {
		maxDF := 0
		for id := 0; id < f.col.Lex.Size(); id++ {
			term := lexTermIDT(id)
			if mx.FragmentIndexOf(term) == fi {
				if df := frag.DocFreq(term); df > maxDF {
					maxDF = df
				}
			}
		}
		if maxDF < prevMax {
			// Boundary groups may share a df; a strict drop is a bug.
			t.Fatalf("fragment %d max df %d below previous %d", fi, maxDF, prevMax)
		}
		prevMax = maxDF
	}
}

func TestBuildMultiValidation(t *testing.T) {
	f := fix(t)
	pool, _ := storage.NewPool(storage.NewDisk(), 1<<12)
	if _, err := index.BuildMulti(f.col, pool, nil); err == nil {
		t.Error("no cuts accepted")
	}
	if _, err := index.BuildMulti(f.col, pool, []float64{0.5, 0.3}); err == nil {
		t.Error("non-increasing cuts accepted")
	}
	if _, err := index.BuildMulti(f.col, pool, []float64{0}); err == nil {
		t.Error("zero cut accepted")
	}
	if _, err := index.BuildMulti(f.col, pool, []float64{1}); err == nil {
		t.Error("unit cut accepted")
	}
}

// TestProgressiveExactMatchesFull: with epsilon 0 the progressive engine
// must return exactly the full engine's ranking, for every query.
func TestProgressiveExactMatchesFull(t *testing.T) {
	f := fix(t)
	p, _ := buildMulti(t)
	for _, q := range f.queries {
		want, err := f.engine.Search(q, Options{N: 10, Mode: ModeFull})
		if err != nil {
			t.Fatal(err)
		}
		got, err := p.Search(q, ProgressiveOptions{N: 10})
		if err != nil {
			t.Fatal(err)
		}
		if !got.Exact {
			t.Fatalf("query %d: exact run not marked exact", q.ID)
		}
		if len(got.Top) != len(want.Top) {
			t.Fatalf("query %d: %d results, want %d", q.ID, len(got.Top), len(want.Top))
		}
		for i := range want.Top {
			if got.Top[i].DocID != want.Top[i].DocID {
				t.Fatalf("query %d: position %d is doc %d, want %d",
					q.ID, i, got.Top[i].DocID, want.Top[i].DocID)
			}
		}
	}
}

// TestProgressiveStopsEarly: across the workload, at least some queries
// must terminate before the last fragment, and early termination must
// save decoding work.
func TestProgressiveStopsEarly(t *testing.T) {
	f := fix(t)
	p, mx := buildMulti(t)
	stopped := 0
	mx.ResetCounters()
	for _, q := range f.queries {
		res, err := p.Search(q, ProgressiveOptions{N: 10})
		if err != nil {
			t.Fatal(err)
		}
		if res.FragmentsUsed < len(mx.Fragments) {
			stopped++
		}
	}
	exactDecodes := mx.Decoded()
	if stopped == 0 {
		t.Error("no query stopped before the last fragment")
	}
	// Epsilon relaxation must stop no later and decode no more.
	mx.ResetCounters()
	for _, q := range f.queries {
		if _, err := p.Search(q, ProgressiveOptions{N: 10, Epsilon: 0.5}); err != nil {
			t.Fatal(err)
		}
	}
	relaxedDecodes := mx.Decoded()
	if relaxedDecodes > exactDecodes {
		t.Errorf("epsilon=0.5 decoded %d > exact %d", relaxedDecodes, exactDecodes)
	}
}

// TestProgressiveEpsilonQualityBound: the relaxed stop loses little
// quality at small epsilon.
func TestProgressiveEpsilonQualityBound(t *testing.T) {
	f := fix(t)
	p, _ := buildMulti(t)
	eval, err := quality.NewEvaluator(10)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range f.queries {
		exact, err := p.Search(q, ProgressiveOptions{N: 10})
		if err != nil {
			t.Fatal(err)
		}
		relaxed, err := p.Search(q, ProgressiveOptions{N: 10, Epsilon: 0.1})
		if err != nil {
			t.Fatal(err)
		}
		eval.Add(quality.NewQrels(exact.Top), relaxed.Top)
	}
	if s := eval.Summary(); s.MeanPrecision < 0.8 {
		t.Errorf("epsilon=0.1 P@10 = %.3f; the bounded relaxation lost too much", s.MeanPrecision)
	}
}

func TestProgressiveValidation(t *testing.T) {
	f := fix(t)
	p, _ := buildMulti(t)
	if _, err := p.Search(f.queries[0], ProgressiveOptions{N: 0}); err == nil {
		t.Error("N=0 accepted")
	}
	if _, err := p.Search(f.queries[0], ProgressiveOptions{N: 5, Epsilon: -1}); err == nil {
		t.Error("negative epsilon accepted")
	}
	if _, err := NewProgressive(nil, rank.NewBM25()); err == nil {
		t.Error("nil index accepted")
	}
}

// lexTermIDT adapts an int to a TermID for the partition test.
func lexTermIDT(i int) lexicon.TermID { return lexicon.TermID(i) }
