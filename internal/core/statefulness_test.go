package core

import (
	"testing"
)

// TestEngineReuseNoStateLeak runs searches back to back in mixed modes and
// checks repeated evaluations of the same query are identical — the
// accumulator reset must be complete, or scores would accumulate across
// queries.
func TestEngineReuseNoStateLeak(t *testing.T) {
	f := fix(t)
	q1, q2 := f.queries[0], f.queries[1]
	baseline, err := f.engine.Search(q1, Options{N: 10, Mode: ModeFull})
	if err != nil {
		t.Fatal(err)
	}
	// Interleave other queries and modes.
	for _, opts := range []Options{
		{N: 3, Mode: ModeUnsafe},
		{N: 10, Mode: ModeSafe, SwitchThreshold: 2, ProbeLarge: true},
		{N: 1, Mode: ModeSafe, SwitchThreshold: 0.5},
	} {
		if _, err := f.engine.Search(q2, opts); err != nil {
			t.Fatal(err)
		}
	}
	again, err := f.engine.Search(q1, Options{N: 10, Mode: ModeFull})
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Top) != len(baseline.Top) {
		t.Fatalf("result size changed across reuse: %d vs %d", len(again.Top), len(baseline.Top))
	}
	for i := range baseline.Top {
		if again.Top[i] != baseline.Top[i] {
			t.Fatalf("position %d changed across engine reuse: %v vs %v",
				i, again.Top[i], baseline.Top[i])
		}
	}
}

// TestProgressiveReuseNoStateLeak is the same guarantee for the
// progressive engine.
func TestProgressiveReuseNoStateLeak(t *testing.T) {
	f := fix(t)
	p, _ := buildMulti(t)
	q1, q2 := f.queries[0], f.queries[2]
	baseline, err := p.Search(q1, ProgressiveOptions{N: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, eps := range []float64{0, 0.5, 2} {
		if _, err := p.Search(q2, ProgressiveOptions{N: 5, Epsilon: eps}); err != nil {
			t.Fatal(err)
		}
	}
	again, err := p.Search(q1, ProgressiveOptions{N: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := range baseline.Top {
		if again.Top[i] != baseline.Top[i] {
			t.Fatalf("position %d changed across progressive reuse", i)
		}
	}
}

// TestResultMetadataConsistency cross-checks the bookkeeping fields the
// experiments aggregate: processed + skipped covers exactly the indexed
// query terms, and coverage/switch agree with the mode semantics.
func TestResultMetadataConsistency(t *testing.T) {
	f := fix(t)
	for _, q := range f.queries {
		indexed := 0
		for _, term := range q.Terms {
			if f.col.Lex.Stats(term).DocFreq > 0 {
				indexed++
			}
		}
		full, err := f.engine.Search(q, Options{N: 5, Mode: ModeFull})
		if err != nil {
			t.Fatal(err)
		}
		if full.TermsProcessed != indexed || full.TermsSkipped != 0 {
			t.Fatalf("query %d full: processed %d skipped %d, want %d/0",
				q.ID, full.TermsProcessed, full.TermsSkipped, indexed)
		}
		unsafe, err := f.engine.Search(q, Options{N: 5, Mode: ModeUnsafe})
		if err != nil {
			t.Fatal(err)
		}
		if unsafe.TermsProcessed+unsafe.TermsSkipped != indexed {
			t.Fatalf("query %d unsafe: %d+%d != %d",
				q.ID, unsafe.TermsProcessed, unsafe.TermsSkipped, indexed)
		}
		if unsafe.Switched {
			t.Fatal("unsafe mode cannot switch")
		}
		safe, err := f.engine.Search(q, Options{N: 5, Mode: ModeSafe, SwitchThreshold: 0.8})
		if err != nil {
			t.Fatal(err)
		}
		if safe.Switched != (safe.Coverage < 0.8) {
			t.Fatalf("query %d: switched=%v at coverage %v threshold 0.8",
				q.ID, safe.Switched, safe.Coverage)
		}
	}
}
