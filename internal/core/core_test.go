package core

import (
	"testing"

	"repro/internal/collection"
	"repro/internal/index"
	"repro/internal/quality"
	"repro/internal/rank"
	"repro/internal/storage"
	"repro/internal/vector"
)

type fixture struct {
	col     *collection.Collection
	fx      *index.Fragmented
	engine  *Engine
	queries []collection.Query
	// freqQueries include genuinely frequent terms (no stopword strip);
	// they exercise the long large-fragment lists the probe strategy
	// targets.
	freqQueries []collection.Query
}

var cached *fixture

// fix builds (once) a mid-sized fragmented engine at the paper's operating
// point scaled down to unit-test size: at 2000 documents a 10% volume
// fragment with a df cap of 2% on query terms reproduces the regime the
// paper measured on TREC FT with a 5% fragment (the fragment covers most
// query terms; unsafe processing loses >30% quality for a large speedup).
func fix(t testing.TB) *fixture {
	t.Helper()
	if cached != nil {
		return cached
	}
	col, err := collection.Generate(collection.Config{
		NumDocs: 2000, VocabSize: 30000, MeanDocLen: 200, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := storage.NewPool(storage.NewDisk(), 1<<14)
	if err != nil {
		t.Fatal(err)
	}
	fx, err := index.BuildFragmented(col, pool, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := NewEngine(fx, rank.NewBM25())
	if err != nil {
		t.Fatal(err)
	}
	queries, err := collection.GenerateQueries(col, collection.QueryConfig{
		NumQueries: 40, MinTerms: 2, MaxTerms: 6, Seed: 22, MaxDocFreqFrac: 0.02,
	})
	if err != nil {
		t.Fatal(err)
	}
	freqQueries, err := collection.GenerateQueries(col, collection.QueryConfig{
		NumQueries: 40, MinTerms: 3, MaxTerms: 6, Seed: 23, MaxDocFreqFrac: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	cached = &fixture{col: col, fx: fx, engine: engine, queries: queries, freqQueries: freqQueries}
	return cached
}

func TestNewEngineValidation(t *testing.T) {
	if _, err := NewEngine(nil, rank.NewBM25()); err == nil {
		t.Error("nil index accepted")
	}
	f := fix(t)
	if _, err := NewEngine(f.fx, nil); err == nil {
		t.Error("nil scorer accepted")
	}
}

func TestSearchValidation(t *testing.T) {
	f := fix(t)
	if _, err := f.engine.Search(f.queries[0], Options{N: 0}); err == nil {
		t.Error("N=0 accepted")
	}
	if _, err := f.engine.Search(f.queries[0], Options{N: 5, Mode: Mode(99)}); err == nil {
		t.Error("bad mode accepted")
	}
}

// TestFullMatchesBruteForce: the engine's full mode must agree with direct
// scoring over the collection — the correctness anchor for everything.
func TestFullMatchesBruteForce(t *testing.T) {
	f := fix(t)
	scorer := f.engine.Scorer
	corpus := f.engine.Corpus()
	for _, q := range f.queries[:8] {
		res, err := f.engine.Search(q, Options{N: 10, Mode: ModeFull})
		if err != nil {
			t.Fatal(err)
		}
		// Brute force.
		acc := rank.NewAccumulator(len(f.col.Docs))
		for _, term := range q.Terms {
			st := f.col.Lex.Stats(term)
			ts := rank.TermStat{DocFreq: int(st.DocFreq), CollFreq: st.CollFreq}
			if ts.DocFreq == 0 {
				continue
			}
			for i := range f.col.Docs {
				d := &f.col.Docs[i]
				if tf := d.TF(term); tf > 0 {
					acc.Add(d.ID, scorer.Score(tf, d.Len, ts, corpus))
				}
			}
		}
		want := acc.Results()
		if len(want) > 10 {
			want = want[:10]
		}
		if len(res.Top) != len(want) {
			t.Fatalf("query %d: %d results, want %d", q.ID, len(res.Top), len(want))
		}
		for i := range want {
			if res.Top[i].DocID != want[i].DocID {
				t.Fatalf("query %d: position %d is doc %d, want %d", q.ID, i, res.Top[i].DocID, want[i].DocID)
			}
			if diff := res.Top[i].Score - want[i].Score; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("query %d: score mismatch at %d", q.ID, i)
			}
		}
	}
}

// TestUnsafeCheaperButLossy verifies the E1/E2 shape at unit scale: over
// the workload, unsafe processing decodes far fewer postings and loses
// ranking quality.
func TestUnsafeCheaperButLossy(t *testing.T) {
	f := fix(t)
	eval, err := quality.NewEvaluator(10)
	if err != nil {
		t.Fatal(err)
	}
	var fullDecodes, unsafeDecodes int64
	for _, q := range f.queries {
		f.fx.ResetCounters()
		truth, err := f.engine.Search(q, Options{N: 10, Mode: ModeFull})
		if err != nil {
			t.Fatal(err)
		}
		fullDecodes += f.fx.Small.Counters().PostingsDecoded + f.fx.Large.Counters().PostingsDecoded

		f.fx.ResetCounters()
		unsafe, err := f.engine.Search(q, Options{N: 10, Mode: ModeUnsafe})
		if err != nil {
			t.Fatal(err)
		}
		unsafeDecodes += f.fx.Small.Counters().PostingsDecoded + f.fx.Large.Counters().PostingsDecoded
		eval.Add(quality.NewQrels(truth.Top), unsafe.Top)
	}
	if unsafeDecodes*3 > fullDecodes {
		t.Errorf("unsafe decoded %d postings vs full %d; expected a large reduction", unsafeDecodes, fullDecodes)
	}
	s := eval.Summary()
	if s.MeanPrecision >= 0.999 {
		t.Errorf("unsafe precision %.3f: expected measurable quality loss", s.MeanPrecision)
	}
	if s.MeanPrecision < 0.2 {
		t.Errorf("unsafe precision %.3f: rare terms should still carry most signal", s.MeanPrecision)
	}
}

// TestSafeRestoresQuality verifies the E3 shape: the safe strategy's
// quality is at least the unsafe strategy's, at a cost between unsafe and
// full.
func TestSafeRestoresQuality(t *testing.T) {
	f := fix(t)
	evalUnsafe, _ := quality.NewEvaluator(10)
	evalSafe, _ := quality.NewEvaluator(10)
	var unsafeDecodes, safeDecodes, fullDecodes int64
	switched := 0
	for _, q := range f.queries {
		truth, err := f.engine.Search(q, Options{N: 10, Mode: ModeFull})
		if err != nil {
			t.Fatal(err)
		}
		f.fx.ResetCounters()
		_, err = f.engine.Search(q, Options{N: 10, Mode: ModeFull})
		if err != nil {
			t.Fatal(err)
		}
		fullDecodes += f.fx.Small.Counters().PostingsDecoded + f.fx.Large.Counters().PostingsDecoded

		f.fx.ResetCounters()
		unsafe, err := f.engine.Search(q, Options{N: 10, Mode: ModeUnsafe})
		if err != nil {
			t.Fatal(err)
		}
		unsafeDecodes += f.fx.Small.Counters().PostingsDecoded + f.fx.Large.Counters().PostingsDecoded

		f.fx.ResetCounters()
		safe, err := f.engine.Search(q, Options{N: 10, Mode: ModeSafe, SwitchThreshold: 0.8})
		if err != nil {
			t.Fatal(err)
		}
		safeDecodes += f.fx.Small.Counters().PostingsDecoded + f.fx.Large.Counters().PostingsDecoded
		if safe.Switched {
			switched++
		}
		qr := quality.NewQrels(truth.Top)
		evalUnsafe.Add(qr, unsafe.Top)
		evalSafe.Add(qr, safe.Top)
	}
	pu := evalUnsafe.Summary().MeanPrecision
	ps := evalSafe.Summary().MeanPrecision
	if ps < pu {
		t.Errorf("safe precision %.3f below unsafe %.3f", ps, pu)
	}
	if ps < 0.85 {
		t.Errorf("safe precision %.3f: switching should restore most quality", ps)
	}
	if switched == 0 {
		t.Error("no query triggered the switch; threshold ineffective")
	}
	if safeDecodes <= unsafeDecodes {
		t.Error("safe cannot be cheaper than unsafe")
	}
	if safeDecodes > fullDecodes {
		t.Errorf("safe decoded %d vs full %d; switching everything defeats the design", safeDecodes, fullDecodes)
	}
}

// TestProbeCheaperThanStream verifies the E4 shape on queries containing
// genuinely frequent terms: consulting the large fragment by candidate
// probing through the non-dense index decodes substantially less than
// streaming it, and lifts quality above unsafe — the paper's "extra
// computations while still decreasing execution time, bringing the answer
// quality nearer" claim.
func TestProbeCheaperThanStream(t *testing.T) {
	f := fix(t)
	var streamDecodes, probeDecodes int64
	evalUnsafe, _ := quality.NewEvaluator(10)
	evalStream, _ := quality.NewEvaluator(10)
	evalProbe, _ := quality.NewEvaluator(10)
	for _, q := range f.freqQueries {
		truth, err := f.engine.Search(q, Options{N: 10, Mode: ModeFull})
		if err != nil {
			t.Fatal(err)
		}
		unsafe, err := f.engine.Search(q, Options{N: 10, Mode: ModeUnsafe})
		if err != nil {
			t.Fatal(err)
		}
		// Force the switch for every query so the comparison isolates the
		// large-fragment access method.
		f.fx.ResetCounters()
		stream, err := f.engine.Search(q, Options{N: 10, Mode: ModeSafe, SwitchThreshold: 2})
		if err != nil {
			t.Fatal(err)
		}
		streamDecodes += f.fx.Large.Counters().PostingsDecoded

		f.fx.ResetCounters()
		probe, err := f.engine.Search(q, Options{N: 10, Mode: ModeSafe, SwitchThreshold: 2, ProbeLarge: true})
		if err != nil {
			t.Fatal(err)
		}
		probeDecodes += f.fx.Large.Counters().PostingsDecoded
		qr := quality.NewQrels(truth.Top)
		evalUnsafe.Add(qr, unsafe.Top)
		evalStream.Add(qr, stream.Top)
		evalProbe.Add(qr, probe.Top)
	}
	if probeDecodes >= streamDecodes {
		t.Errorf("probe decoded %d vs stream %d; the non-dense index must pay off", probeDecodes, streamDecodes)
	}
	pu := evalUnsafe.Summary().MeanPrecision
	ps := evalStream.Summary().MeanPrecision
	pp := evalProbe.Summary().MeanPrecision
	if pp <= pu {
		t.Errorf("probe precision %.3f not above unsafe %.3f", pp, pu)
	}
	if pp > ps+1e-9 {
		t.Errorf("probe precision %.3f above full-stream %.3f is impossible", pp, ps)
	}
}

func TestCoverageBounds(t *testing.T) {
	f := fix(t)
	for _, q := range f.queries {
		c := f.engine.Coverage(q)
		if c < 0 || c > 1 {
			t.Fatalf("coverage %v out of [0,1]", c)
		}
	}
	// Empty query: full coverage by definition.
	if c := f.engine.Coverage(collection.Query{}); c != 1 {
		t.Errorf("empty query coverage = %v", c)
	}
}

func TestSwitchThresholdMonotone(t *testing.T) {
	f := fix(t)
	// A higher threshold can only switch more queries.
	count := func(th float64) int {
		n := 0
		for _, q := range f.queries {
			res, err := f.engine.Search(q, Options{N: 5, Mode: ModeSafe, SwitchThreshold: th})
			if err != nil {
				t.Fatal(err)
			}
			if res.Switched {
				n++
			}
		}
		return n
	}
	low, high := count(0.2), count(0.95)
	if low > high {
		t.Errorf("threshold 0.2 switched %d queries, 0.95 switched %d; must be monotone", low, high)
	}
}

func TestPlannerCalibration(t *testing.T) {
	f := fix(t)
	p, err := NewPlanner(f.engine)
	if err != nil {
		t.Fatal(err)
	}
	if p.Model.BytesPerPosting <= 0 || p.Model.BytesPerPosting > 8 {
		t.Errorf("calibrated bytes/posting = %v; expected compressed (< 8)", p.Model.BytesPerPosting)
	}
}

// TestPlannerCostOrdering is E9's criterion at unit scale: for each query,
// the predicted decode cost of the alternatives must order the same way
// the measured decode counts do.
func TestPlannerCostOrdering(t *testing.T) {
	f := fix(t)
	p, err := NewPlanner(f.engine)
	if err != nil {
		t.Fatal(err)
	}
	agree, total := 0, 0
	for _, q := range f.queries {
		choice := p.Plan(q)
		measured := map[PlanAlternative]int64{}

		f.fx.ResetCounters()
		if _, err := f.engine.Search(q, Options{N: 10, Mode: ModeUnsafe}); err != nil {
			t.Fatal(err)
		}
		measured[PlanUnsafe] = f.fx.Small.Counters().PostingsDecoded + f.fx.Large.Counters().PostingsDecoded

		f.fx.ResetCounters()
		if _, err := f.engine.Search(q, Options{N: 10, Mode: ModeSafe, SwitchThreshold: 2}); err != nil {
			t.Fatal(err)
		}
		measured[PlanSafeStream] = f.fx.Small.Counters().PostingsDecoded + f.fx.Large.Counters().PostingsDecoded

		f.fx.ResetCounters()
		if _, err := f.engine.Search(q, Options{N: 10, Mode: ModeSafe, SwitchThreshold: 2, ProbeLarge: true}); err != nil {
			t.Fatal(err)
		}
		measured[PlanSafeProbe] = f.fx.Small.Counters().PostingsDecoded + f.fx.Large.Counters().PostingsDecoded

		// Pairwise ordering agreement on decode counts.
		pairs := [][2]PlanAlternative{
			{PlanUnsafe, PlanSafeStream},
			{PlanUnsafe, PlanSafeProbe},
			{PlanSafeProbe, PlanSafeStream},
		}
		for _, pr := range pairs {
			predLess := choice.Predicted[pr[0]].Decodes <= choice.Predicted[pr[1]].Decodes
			measLess := measured[pr[0]] <= measured[pr[1]]
			total++
			if predLess == measLess {
				agree++
			}
		}
	}
	if ratio := float64(agree) / float64(total); ratio < 0.85 {
		t.Errorf("cost model ordered only %.0f%% of plan pairs correctly", 100*ratio)
	}
}

func TestPlannerRunExecutesChoice(t *testing.T) {
	f := fix(t)
	p, err := NewPlanner(f.engine)
	if err != nil {
		t.Fatal(err)
	}
	ranUnsafe, ranSwitched := false, false
	for _, q := range f.queries {
		res, choice, err := p.Run(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Top) == 0 && len(q.Terms) > 0 && f.col.MatchFraction(q) > 0 {
			t.Errorf("query %d returned nothing", q.ID)
		}
		switch choice.Chosen {
		case PlanUnsafe:
			ranUnsafe = true
			if res.Switched {
				t.Error("unsafe plan reported a switch")
			}
		case PlanSafeStream, PlanSafeProbe:
			ranSwitched = true
			if !res.Switched {
				t.Error("safe plan did not switch")
			}
		}
	}
	if !ranUnsafe || !ranSwitched {
		t.Errorf("plan space not exercised: unsafe=%v switched=%v", ranUnsafe, ranSwitched)
	}
}

func TestFusionAgreesAcrossAlgorithms(t *testing.T) {
	f := fix(t)
	data, err := vector.Generate(vector.Config{
		NumObjects: f.fx.Stats.NumDocs, Dim: 8, NumClusters: 6, Seed: 33,
	})
	if err != nil {
		t.Fatal(err)
	}
	fusion, err := NewFusion(f.engine, data)
	if err != nil {
		t.Fatal(err)
	}
	fq := FusionQuery{
		Text:    f.queries[0],
		Points:  []vector.Vector{data.Vecs[7]},
		Weights: []float64{1.0, 0.5},
	}
	naive, err := fusion.Search(fq, 10, AlgNaive, ModeFull)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{AlgFA, AlgTA} {
		got, err := fusion.Search(fq, 10, alg, ModeFull)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Top) != len(naive.Top) {
			t.Fatalf("%s: %d results", alg, len(got.Top))
		}
		for i := range got.Top {
			if got.Top[i].DocID != naive.Top[i].DocID {
				t.Fatalf("%s disagrees with naive at %d", alg, i)
			}
		}
	}
	// NRA: set agreement.
	nra, err := fusion.Search(fq, 10, AlgNRA, ModeFull)
	if err != nil {
		t.Fatal(err)
	}
	inTrue := map[uint32]bool{}
	for _, d := range naive.Top {
		inTrue[d.DocID] = true
	}
	for _, d := range nra.Top {
		if !inTrue[d.DocID] {
			t.Fatalf("nra returned %d outside the true top set", d.DocID)
		}
	}
}

func TestFusionTASavesAccesses(t *testing.T) {
	f := fix(t)
	data, err := vector.Generate(vector.Config{
		NumObjects: f.fx.Stats.NumDocs, Dim: 8, NumClusters: 6, Seed: 33,
	})
	if err != nil {
		t.Fatal(err)
	}
	fusion, err := NewFusion(f.engine, data)
	if err != nil {
		t.Fatal(err)
	}
	fq := FusionQuery{Text: f.queries[1], Points: []vector.Vector{data.Vecs[42]}}
	naive, err := fusion.Search(fq, 5, AlgNaive, ModeFull)
	if err != nil {
		t.Fatal(err)
	}
	ta, err := fusion.Search(fq, 5, AlgTA, ModeFull)
	if err != nil {
		t.Fatal(err)
	}
	if ta.Accesses.Sorted >= naive.Accesses.Sorted {
		t.Errorf("TA sorted accesses %d vs naive %d", ta.Accesses.Sorted, naive.Accesses.Sorted)
	}
}

func TestFusionValidation(t *testing.T) {
	f := fix(t)
	data, _ := vector.Generate(vector.Config{NumObjects: f.fx.Stats.NumDocs, Dim: 4, Seed: 1})
	fusion, err := NewFusion(f.engine, data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFusion(nil, data); err == nil {
		t.Error("nil engine accepted")
	}
	small, _ := vector.Generate(vector.Config{NumObjects: 3, Dim: 4, Seed: 1})
	if _, err := NewFusion(f.engine, small); err == nil {
		t.Error("mismatched dataset accepted")
	}
	fq := FusionQuery{Text: f.queries[0], Points: []vector.Vector{{1, 2}}}
	if _, err := fusion.Search(fq, 5, AlgTA, ModeFull); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if _, err := fusion.Search(FusionQuery{Text: f.queries[0]}, 0, AlgTA, ModeFull); err == nil {
		t.Error("n=0 accepted")
	}
	bad := FusionQuery{Text: f.queries[0], Weights: []float64{1, 2, 3}}
	if _, err := fusion.Search(bad, 5, AlgTA, ModeFull); err == nil {
		t.Error("weight arity mismatch accepted")
	}
}
