package core

import (
	"fmt"

	"repro/internal/collection"
	"repro/internal/topk"
	"repro/internal/vector"
)

// FusionQuery is an integrated MM top-N query: a text component plus one
// or more feature-space components (query-by-example points), combined by
// weighted sum. This is the query class the paper's introduction motivates
// — "integrated top N queries on several content and alpha numerical
// types" — and the workload of experiment E10.
type FusionQuery struct {
	Text collection.Query
	// Points are query-by-example feature vectors, one per feature source.
	Points []vector.Vector
	// Weights order: first the text source, then one per point. When nil,
	// all sources weigh 1.
	Weights []float64
}

// Fusion evaluates integrated text⊕feature queries over a text engine and
// a feature dataset using the middleware algorithms.
type Fusion struct {
	Engine *Engine
	Data   *vector.Dataset
}

// NewFusion pairs a text engine with a feature dataset. The dataset must
// grade the same document ids the engine ranks.
func NewFusion(e *Engine, data *vector.Dataset) (*Fusion, error) {
	if e == nil || data == nil {
		return nil, fmt.Errorf("core: nil engine or dataset")
	}
	if len(data.Vecs) != e.FX.Stats.NumDocs {
		return nil, fmt.Errorf("core: dataset has %d objects, engine ranks %d documents",
			len(data.Vecs), e.FX.Stats.NumDocs)
	}
	return &Fusion{Engine: e, Data: data}, nil
}

// TextSource materializes the text ranking as a graded Source for the
// middleware algorithms: every matching document graded by its (full,
// exact) text score. In a mediator architecture this is the ranked stream
// the text subsystem exports.
func (f *Fusion) TextSource(q collection.Query, mode Mode) (*topk.SliceSource, error) {
	res, err := f.Engine.Search(q, Options{
		N:    f.Engine.FX.Stats.NumDocs, // keep every matching document
		Mode: mode,
	})
	if err != nil {
		return nil, err
	}
	return topk.NewSliceSource(res.Top), nil
}

// Algorithm selects the middleware evaluation strategy for fused queries.
type Algorithm int

// The fusion evaluation strategies.
const (
	// AlgNaive drains all sources (the unoptimized baseline).
	AlgNaive Algorithm = iota
	// AlgFA is Fagin's original algorithm.
	AlgFA
	// AlgTA is the threshold algorithm.
	AlgTA
	// AlgNRA is the no-random-access algorithm.
	AlgNRA
)

// String names the algorithm in experiment output.
func (a Algorithm) String() string {
	switch a {
	case AlgNaive:
		return "naive"
	case AlgFA:
		return "fa"
	case AlgTA:
		return "ta"
	case AlgNRA:
		return "nra"
	default:
		return "unknown"
	}
}

// Search evaluates fq returning the fused top n with the access counts the
// middleware model measures. textMode picks the text subplan strategy
// (full for exact grades, unsafe/safe for the fragmented speedups —
// composing Step 1 with the middleware layer).
func (f *Fusion) Search(fq FusionQuery, n int, alg Algorithm, textMode Mode) (topk.Result, error) {
	if n <= 0 {
		return topk.Result{}, fmt.Errorf("core: fusion n = %d must be positive", n)
	}
	text, err := f.TextSource(fq.Text, textMode)
	if err != nil {
		return topk.Result{}, err
	}
	sources := []topk.Source{text}
	for _, pt := range fq.Points {
		src, err := f.Data.Source(pt)
		if err != nil {
			return topk.Result{}, fmt.Errorf("core: query point: %w", err)
		}
		sources = append(sources, src)
	}
	weights := fq.Weights
	if weights == nil {
		weights = make([]float64, len(sources))
		for i := range weights {
			weights[i] = 1
		}
	}
	if len(weights) != len(sources) {
		return topk.Result{}, fmt.Errorf("core: %d weights for %d sources", len(weights), len(sources))
	}
	agg := topk.WeightedSumAgg(weights)
	switch alg {
	case AlgNaive:
		return topk.Naive(sources, agg, n)
	case AlgFA:
		return topk.FA(sources, agg, n)
	case AlgTA:
		return topk.TA(sources, agg, n)
	case AlgNRA:
		return topk.NRA(sources, agg, n)
	default:
		return topk.Result{}, fmt.Errorf("core: unknown algorithm %d", alg)
	}
}
