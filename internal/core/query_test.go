package core

import (
	"testing"

	"repro/internal/lexicon"
)

func TestParseQuery(t *testing.T) {
	f := fix(t)
	lex := f.col.Lex
	// Term names are "t<rank>" by construction of the generator.
	q, err := ParseQuery(lex, 3, "t10 t20 t10 nosuchterm")
	if err != nil {
		t.Fatal(err)
	}
	if q.ID != 3 {
		t.Errorf("ID = %d", q.ID)
	}
	if len(q.Terms) != 2 {
		t.Fatalf("terms = %v, want 2 distinct known terms", q.Terms)
	}
	for i := 1; i < len(q.Terms); i++ {
		if q.Terms[i] <= q.Terms[i-1] {
			t.Error("terms not sorted")
		}
	}
}

func TestParseQueryAllUnknown(t *testing.T) {
	f := fix(t)
	if _, err := ParseQuery(f.col.Lex, 0, "xyzzy plugh"); err == nil {
		t.Error("query with no known terms accepted")
	}
	// Empty text is a valid (empty) query.
	q, err := ParseQuery(f.col.Lex, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Terms) != 0 {
		t.Error("empty text produced terms")
	}
}

func TestSearchTextMatchesSearch(t *testing.T) {
	f := fix(t)
	// Build the text form of an existing workload query.
	q := f.queries[0]
	text := ""
	for _, term := range q.Terms {
		text += f.col.Lex.Name(term) + " "
	}
	want, err := f.engine.Search(q, Options{N: 5, Mode: ModeFull})
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.engine.SearchText(text, Options{N: 5, Mode: ModeFull})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Top) != len(want.Top) {
		t.Fatalf("result sizes differ: %d vs %d", len(got.Top), len(want.Top))
	}
	for i := range want.Top {
		if got.Top[i] != want.Top[i] {
			t.Fatalf("position %d differs", i)
		}
	}
	_ = lexicon.InvalidTerm
}
