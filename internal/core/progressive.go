package core

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/collection"
	"repro/internal/index"
	"repro/internal/lexicon"
	"repro/internal/rank"
	"repro/internal/topk"
)

// Progressive evaluates top-N queries over a fragment chain
// (index.MultiFragmented), processing fragments from rarest to most
// frequent terms and stopping as soon as the bound administration proves
// the top N stable. It implements the synthesis the paper's programme
// points at: the fragmentation of Step 1 turned into a safe early-
// termination strategy by the upper/lower-bound machinery of the Fagin
// line of work, with the top-N operator deciding *how much* of the
// physical design a query needs to touch.
//
// Like Engine, a Progressive keeps all mutable per-query state in a
// per-Search context drawn from an internal pool, so one instance is safe
// for concurrent Search from multiple goroutines — and a warmed instance
// runs Search with zero heap allocations.
type Progressive struct {
	MX     *index.MultiFragmented
	Scorer rank.Scorer

	corpus rank.CorpusStat
	states sync.Pool // of *progState, accumulator sized for the corpus
}

// progState is the pooled per-Search evaluation state: the dense
// accumulator, the per-fragment term grouping, the remaining-mass
// prefix, and the bounded heap that serves both the safe-stop check and
// the final selection.
type progState struct {
	acc       *rank.Accumulator
	heap      *topk.Heap
	byFrag    [][]fragTerm
	remaining []float64
}

// fragTerm is one resolved query term: its id, statistics, and score
// upper bound.
type fragTerm struct {
	id lexicon.TermID
	ts rank.TermStat
	ub float64
}

// ensureHeap (re)bounds the pooled heap to n.
func (st *progState) ensureHeap(n int) error {
	if st.heap == nil {
		h, err := topk.NewHeap(n)
		if err != nil {
			return err
		}
		st.heap = h
		return nil
	}
	return st.heap.Reset(n)
}

// NewProgressive builds a progressive engine over a fragment chain,
// deriving the corpus statistics from the chain's own collection.
func NewProgressive(mx *index.MultiFragmented, scorer rank.Scorer) (*Progressive, error) {
	if mx == nil || scorer == nil {
		return nil, fmt.Errorf("core: nil index or scorer")
	}
	// Corpus statistics are recorded in index.Stats at build time, so no
	// lexicon scan is needed here.
	return NewProgressiveWithCorpus(mx, scorer, mx.Stats.Corpus())
}

// NewProgressiveWithCorpus builds a progressive engine that ranks with
// the given corpus statistics instead of deriving them from the index.
// A sharded deployment uses this to rank every shard with the *global*
// corpus statistics, so per-shard scores are identical to what a single
// unsharded engine would compute (the classical distributed-IR global
// statistics requirement) — without paying a lexicon scan per shard.
func NewProgressiveWithCorpus(mx *index.MultiFragmented, scorer rank.Scorer, corpus rank.CorpusStat) (*Progressive, error) {
	if mx == nil || scorer == nil {
		return nil, fmt.Errorf("core: nil index or scorer")
	}
	p := &Progressive{MX: mx, Scorer: scorer, corpus: corpus}
	numDocs := mx.Stats.NumDocs
	p.states.New = func() any { return &progState{acc: rank.NewAccumulator(numDocs)} }
	return p, nil
}

// Corpus exposes the collection statistics the engine ranks with — the
// global statistics in a sharded deployment, which shard persistence
// must carry to disk so reopened shards rank identically.
func (p *Progressive) Corpus() rank.CorpusStat { return p.corpus }

// ProgressiveResult reports the answer and how far along the chain the
// query had to go.
type ProgressiveResult struct {
	Top []rank.DocScore
	// FragmentsUsed counts chain links processed before stopping.
	FragmentsUsed int
	// Exact reports whether the early stop was provably safe (it is
	// always true when Epsilon == 0 and the run completed).
	Exact bool
	// RemainingBound is the unseen score mass at the stopping point: no
	// document's score can grow by more than this if processing had
	// continued.
	RemainingBound float64
	// DocsTouched counts accumulator entries — the "objects taken into
	// consideration", reported for work accounting.
	DocsTouched int
	// Truncated reports whether the accumulator held more candidates than
	// the N returned (shard merging needs this for its bound
	// administration: a truncated shard may hide documents scoring up to
	// its weakest returned score plus RemainingBound).
	Truncated bool
}

// ProgressiveOptions configures a progressive search.
type ProgressiveOptions struct {
	// N is the number of results. Required.
	N int
	// Epsilon relaxes the stopping rule: the run stops once the potential
	// remaining gain is at most Epsilon times the current N-th score
	// (0 = exact top N; small positive values trade certainty for speed,
	// the quantified form of the paper's unsafe techniques).
	Epsilon float64
}

// Search evaluates q over the chain. It is SearchContext without
// cancellation.
func (p *Progressive) Search(q collection.Query, opts ProgressiveOptions) (ProgressiveResult, error) {
	return p.SearchContext(context.Background(), q, opts)
}

// SearchContext evaluates q over the chain, observing ctx. It is
// SearchContextInto with a nil destination buffer.
func (p *Progressive) SearchContext(ctx context.Context, q collection.Query, opts ProgressiveOptions) (ProgressiveResult, error) {
	return p.SearchContextInto(ctx, q, opts, nil)
}

// SearchContextInto evaluates q over the chain with the result's Top
// appended to dst, observing ctx between fragments and at postings-block
// granularity within each list, so a cancelled or deadline-expired query
// returns ctx.Err() without processing the remaining chain. With a dst
// of sufficient capacity a warmed engine performs the whole search
// without a single heap allocation.
func (p *Progressive) SearchContextInto(ctx context.Context, q collection.Query, opts ProgressiveOptions, dst []rank.DocScore) (ProgressiveResult, error) {
	if opts.N <= 0 {
		return ProgressiveResult{}, fmt.Errorf("core: N = %d must be positive", opts.N)
	}
	if opts.Epsilon < 0 {
		return ProgressiveResult{}, fmt.Errorf("core: epsilon %v must be non-negative", opts.Epsilon)
	}
	if err := ctx.Err(); err != nil {
		return ProgressiveResult{}, err
	}
	st := p.states.Get().(*progState)
	defer func() {
		st.acc.Reset()
		p.states.Put(st)
	}()
	acc := st.acc

	// Group query terms by fragment and precompute each term's score
	// upper bound for the remaining-mass administration. The groups and
	// the prefix reuse the pooled state's backing arrays.
	nf := len(p.MX.Fragments)
	if cap(st.byFrag) < nf {
		st.byFrag = make([][]fragTerm, nf)
	}
	byFrag := st.byFrag[:nf]
	for i := range byFrag {
		byFrag[i] = byFrag[i][:0]
	}
	if cap(st.remaining) < nf+1 {
		st.remaining = make([]float64, nf+1)
	}
	remaining := st.remaining[:nf+1]
	for _, t := range q.Terms {
		s := p.MX.Lex.Stats(t)
		if s.DocFreq == 0 {
			continue
		}
		fi := p.MX.FragmentIndexOf(t)
		qt := fragTerm{
			id: t,
			ts: rank.TermStat{DocFreq: int(s.DocFreq), CollFreq: s.CollFreq},
		}
		// The list's recorded maximum TF tightens the term's score bound
		// below the scorer's saturation limit, so the remaining-mass
		// administration stops chains earlier — still provably safe,
		// because no posting in the list can exceed the recorded TF.
		qt.ub = rank.UpperBoundTF(p.Scorer, int32(p.MX.MaxTF(t)), qt.ts, p.corpus)
		byFrag[fi] = append(byFrag[fi], qt)
	}
	remaining[nf] = 0
	for fi := nf - 1; fi >= 0; fi-- {
		var mass float64
		for _, qt := range byFrag[fi] {
			mass += qt.ub
		}
		remaining[fi] = remaining[fi+1] + mass
	}

	var res ProgressiveResult
	poll := ctxPoll{ctx: ctx}
	for fi, terms := range byFrag {
		if err := ctx.Err(); err != nil {
			return ProgressiveResult{}, err
		}
		// Stop check before touching this fragment: can any document
		// still displace the current top N?
		bound := remaining[fi]
		stop, err := p.stopSafe(st, opts.N, bound, opts.Epsilon)
		if err != nil {
			return ProgressiveResult{}, err
		}
		if stop {
			res.Exact = opts.Epsilon == 0
			res.RemainingBound = bound
			res.DocsTouched = acc.Touched()
			res.Top, err = p.topInto(st, opts.N, dst)
			if err != nil {
				return ProgressiveResult{}, err
			}
			res.Truncated = res.DocsTouched > len(res.Top)
			res.FragmentsUsed = fi
			return res, nil
		}
		frag := p.MX.Fragments[fi]
		for _, qt := range terms {
			it, ok, err := frag.Reader(qt.id)
			if err != nil {
				return ProgressiveResult{}, fmt.Errorf("core: term %d: %w", qt.id, err)
			}
			if !ok {
				continue
			}
			for it.Next() {
				if err := poll.check(); err != nil {
					it.Close()
					return ProgressiveResult{}, err
				}
				pst := it.At()
				docLen := p.MX.Stats.DocLen(pst.DocID)
				acc.Add(pst.DocID, p.Scorer.Score(int32(pst.TF), docLen, qt.ts, p.corpus))
			}
			err = it.Err()
			it.Close()
			if err != nil {
				return ProgressiveResult{}, err
			}
		}
		res.FragmentsUsed = fi + 1
	}
	res.Exact = true
	res.RemainingBound = 0
	res.DocsTouched = acc.Touched()
	var err error
	res.Top, err = p.topInto(st, opts.N, dst)
	if err != nil {
		return ProgressiveResult{}, err
	}
	res.Truncated = res.DocsTouched > len(res.Top)
	return res, nil
}

// topInto selects the accumulator's top n into dst (appended, best
// first) via the pooled bounded heap — the allocation-free replacement
// for sorting the whole accumulator.
func (p *Progressive) topInto(st *progState, n int, dst []rank.DocScore) ([]rank.DocScore, error) {
	if err := st.ensureHeap(n); err != nil {
		return nil, err
	}
	h := st.heap
	st.acc.Each(func(doc uint32, score float64) {
		h.Offer(rank.DocScore{DocID: doc, Score: score})
	})
	return h.AppendResults(dst), nil
}

// stopSafe decides whether processing can end given the remaining score
// mass. Exact rule (epsilon 0): the N-th best current score must be at
// least the best possible final score of every other document — the
// (N+1)-th current score plus the bound for seen documents, or the bound
// alone for unseen ones. Relaxed rule: the bound is at most epsilon times
// the N-th score.
//
// The N-th and (N+1)-th scores come from one pass over the accumulator
// through a heap bounded at n+1: its weakest member is the (N+1)-th best
// score and its second-weakest the N-th — no sort, no allocation.
func (p *Progressive) stopSafe(st *progState, n int, bound, epsilon float64) (bool, error) {
	if bound == 0 {
		return true, nil
	}
	if st.acc.Touched() < n {
		return false, nil
	}
	if err := st.ensureHeap(n + 1); err != nil {
		return false, err
	}
	h := st.heap
	st.acc.Each(func(doc uint32, score float64) {
		h.Offer(rank.DocScore{DocID: doc, Score: score})
	})
	var nth, runnerUp float64
	if h.Len() > n {
		m, _ := h.Min()
		runnerUp = m.Score
		s, _ := h.SecondMin()
		nth = s.Score
	} else {
		m, _ := h.Min()
		nth = m.Score
	}
	if epsilon > 0 {
		return bound <= epsilon*nth, nil
	}
	// Unseen documents can reach at most bound; seen non-top documents at
	// most runnerUp+bound.
	return nth >= runnerUp+bound && nth >= bound, nil
}
