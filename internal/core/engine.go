// Package core implements the paper's primary contribution: a top-N text
// retrieval engine over a horizontally fragmented inverted file, with the
// unsafe and safe processing strategies of Step 1, the early quality check
// that switches between them, candidate probing of the large fragment
// through the non-dense index, and cost-model-driven plan selection
// (Step 3). The MM fusion queries of the integrated scenario (text ⊕
// feature, Step 2's motivation) are built on top in fusion.go.
//
// Terminology follows the paper:
//
//   - full: process every query term's postings — the unoptimized,
//     exact evaluation (ground truth for quality);
//   - unsafe: process only the small fragment (rare terms); fast, may
//     lose quality because frequent query terms contribute nothing;
//   - safe: run the plan-time quality check first and consult the large
//     fragment when the check predicts the unsafe answer would be poor;
//   - probe: when the large fragment is consulted, do not stream its
//     lists — probe them with the candidate documents the small fragment
//     produced, using the postings skip (non-dense) index.
package core

import (
	"context"
	"fmt"
	"slices"
	"sync"

	"repro/internal/collection"
	"repro/internal/index"
	"repro/internal/lexicon"
	"repro/internal/rank"
	"repro/internal/topk"
)

// Mode selects the processing strategy for Search.
type Mode int

// The processing strategies.
const (
	// ModeFull processes all query terms' full lists.
	ModeFull Mode = iota
	// ModeUnsafe processes only small-fragment terms.
	ModeUnsafe
	// ModeSafe runs the quality check, then Unsafe or a large-fragment
	// consultation depending on the outcome.
	ModeSafe
)

// String names the mode for experiment output.
func (m Mode) String() string {
	switch m {
	case ModeFull:
		return "full"
	case ModeUnsafe:
		return "unsafe"
	case ModeSafe:
		return "safe"
	default:
		return "unknown"
	}
}

// Options configures a search.
type Options struct {
	// N is the number of results to return. Required.
	N int
	// Mode selects the strategy; default ModeFull.
	Mode Mode
	// SwitchThreshold is the safe mode's quality-check bound: when the
	// predicted score coverage of the small fragment falls below it, the
	// plan switches to consulting the large fragment. Default 0.8.
	SwitchThreshold float64
	// ProbeLarge makes the large-fragment consultation use candidate
	// probing through the non-dense index instead of streaming full
	// lists. Only meaningful in ModeSafe (and ModeFull ignores it).
	ProbeLarge bool
}

func (o *Options) fillDefaults() {
	if o.SwitchThreshold == 0 {
		o.SwitchThreshold = 0.8
	}
}

// Result is a search outcome plus the plan facts experiments report.
type Result struct {
	Top []rank.DocScore
	// Coverage is the quality check's predicted score coverage of the
	// small fragment for this query (1 = all query-term weight lives in
	// the small fragment).
	Coverage float64
	// Switched reports whether safe mode consulted the large fragment.
	Switched bool
	// DocsTouched counts accumulator entries — the paper's "objects taken
	// into consideration during the ranking process".
	DocsTouched int
	// TermsProcessed counts postings lists read (fully or by probing).
	TermsProcessed int
	// TermsSkipped counts query terms whose lists were not read.
	TermsSkipped int
}

// Engine is the fragmented top-N retrieval engine.
//
// All mutable per-query state (the score accumulator, candidate buffer,
// selection heap) lives in a per-Search context drawn from an internal
// pool, so a single Engine is safe for concurrent Search from multiple
// goroutines: the index, lexicon, and collection statistics it reads are
// immutable after build, and the buffer pool underneath serializes page
// access.
type Engine struct {
	FX     *index.Fragmented
	Scorer rank.Scorer

	corpus rank.CorpusStat
	states sync.Pool // of *engState, accumulator sized for the corpus
}

// engState is the pooled per-Search evaluation state.
type engState struct {
	acc   *rank.Accumulator
	heap  *topk.Heap
	cand  []uint32
	large []lexicon.TermID
}

// NewEngine builds an engine over a fragmented index with the given
// ranking model.
func NewEngine(fx *index.Fragmented, scorer rank.Scorer) (*Engine, error) {
	if fx == nil || scorer == nil {
		return nil, fmt.Errorf("core: nil index or scorer")
	}
	e := &Engine{
		FX:     fx,
		Scorer: scorer,
		// Corpus statistics are recorded in index.Stats at build time, so
		// no lexicon scan is needed here.
		corpus: fx.Stats.Corpus(),
	}
	numDocs := fx.Stats.NumDocs
	e.states.New = func() any { return &engState{acc: rank.NewAccumulator(numDocs)} }
	return e, nil
}

// acquireState draws a clean search state from the pool; releaseState
// returns it for the next search.
func (e *Engine) acquireState() *engState {
	return e.states.Get().(*engState)
}

func (e *Engine) releaseState(st *engState) {
	st.acc.Reset()
	st.cand = st.cand[:0]
	st.large = st.large[:0]
	e.states.Put(st)
}

// Corpus exposes the collection statistics the engine ranks with.
func (e *Engine) Corpus() rank.CorpusStat { return e.corpus }

// termStat fetches global term statistics (fragmentation never changes
// the ranking formula's inputs — only which lists get read).
func (e *Engine) termStat(t lexicon.TermID) rank.TermStat {
	s := e.FX.Lex.Stats(t)
	return rank.TermStat{DocFreq: int(s.DocFreq), CollFreq: s.CollFreq}
}

// Coverage computes the quality check of the paper's safe technique: the
// fraction of the query's maximum attainable score mass that small-
// fragment terms can contribute. The upper bounds come from the ranking
// model, so the check adapts to the scorer in use. A coverage of 1 means
// the unsafe plan loses nothing; near 0 means almost all ranking signal
// sits in the large fragment.
//
// The check runs at plan time: it touches only the lexicon statistics,
// never the postings — this is what makes it an "early" check in the
// paper's sense.
func (e *Engine) Coverage(q collection.Query) float64 {
	var smallUB, totalUB float64
	for _, t := range q.Terms {
		ts := e.termStat(t)
		if ts.DocFreq == 0 {
			continue
		}
		ub := e.Scorer.UpperBound(ts, e.corpus)
		totalUB += ub
		if e.FX.Small.Has(t) {
			smallUB += ub
		}
	}
	if totalUB == 0 {
		return 1
	}
	return smallUB / totalUB
}

// Search evaluates q with the configured strategy. It is
// SearchContext without cancellation.
func (e *Engine) Search(q collection.Query, opts Options) (Result, error) {
	return e.SearchContext(context.Background(), q, opts)
}

// SearchContext evaluates q with the configured strategy, observing ctx:
// a cancelled or deadline-expired context aborts the evaluation at
// postings-block granularity and returns ctx.Err(), so a caller that has
// gone away stops costing decode work almost immediately.
func (e *Engine) SearchContext(ctx context.Context, q collection.Query, opts Options) (Result, error) {
	opts.fillDefaults()
	if opts.N <= 0 {
		return Result{}, fmt.Errorf("core: N = %d must be positive", opts.N)
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	var res Result
	res.Coverage = e.Coverage(q)

	useLarge := false
	switch opts.Mode {
	case ModeFull:
		useLarge = true
	case ModeUnsafe:
		useLarge = false
	case ModeSafe:
		useLarge = res.Coverage < opts.SwitchThreshold
		res.Switched = useLarge
	default:
		return Result{}, fmt.Errorf("core: unknown mode %d", opts.Mode)
	}

	st := e.acquireState()
	defer e.releaseState(st)
	acc := st.acc
	poll := ctxPoll{ctx: ctx}

	// Pass 1: small-fragment terms, always streamed in full (they are
	// cheap by construction).
	largeTerms := st.large
	for _, t := range q.Terms {
		ts := e.termStat(t)
		if ts.DocFreq == 0 {
			continue
		}
		if e.FX.Small.Has(t) {
			if err := e.streamTerm(&poll, acc, e.FX.Small, t, ts); err != nil {
				return Result{}, err
			}
			res.TermsProcessed++
			continue
		}
		if useLarge {
			largeTerms = append(largeTerms, t)
		} else {
			res.TermsSkipped++
		}
	}
	st.large = largeTerms

	// Pass 2: large-fragment terms, streamed or candidate-probed. Probing
	// restricts scoring to documents the small pass surfaced; when that
	// pass produced no candidates (a query of only frequent terms), the
	// sound fallback is streaming.
	probe := opts.ProbeLarge && opts.Mode == ModeSafe && acc.Touched() > 0
	for _, t := range largeTerms {
		ts := e.termStat(t)
		var err error
		if probe {
			err = e.probeTerm(&poll, st, t, ts)
		} else {
			err = e.streamTerm(&poll, acc, e.FX.Large, t, ts)
		}
		if err != nil {
			return Result{}, err
		}
		res.TermsProcessed++
	}

	res.DocsTouched = acc.Touched()
	if st.heap == nil {
		h, err := topk.NewHeap(opts.N)
		if err != nil {
			return Result{}, err
		}
		st.heap = h
	} else if err := st.heap.Reset(opts.N); err != nil {
		return Result{}, err
	}
	acc.Each(func(doc uint32, score float64) {
		st.heap.Offer(rank.DocScore{DocID: doc, Score: score})
	})
	res.Top = st.heap.Results()
	return res, nil
}

// streamTerm accumulates one full postings list.
func (e *Engine) streamTerm(poll *ctxPoll, acc *rank.Accumulator, frag *index.Fragment, t lexicon.TermID, ts rank.TermStat) error {
	it, ok, err := frag.Reader(t)
	if err != nil {
		return fmt.Errorf("core: term %d: %w", t, err)
	}
	if !ok {
		return nil
	}
	defer it.Close()
	for it.Next() {
		if err := poll.check(); err != nil {
			return err
		}
		p := it.At()
		docLen := e.FX.Stats.DocLen(p.DocID)
		acc.Add(p.DocID, e.Scorer.Score(int32(p.TF), docLen, ts, e.corpus))
	}
	return it.Err()
}

// probeTerm adds a large-fragment term's contributions only for documents
// already in the accumulator, seeking through the list's non-dense index
// instead of decoding it fully. This realizes the paper's plan of a
// sparse index that performs "extra computations while still decreasing
// execution time": the extra computations are the per-candidate seeks, and
// the saving is the skipped decoding between candidates.
func (e *Engine) probeTerm(poll *ctxPoll, st *engState, t lexicon.TermID, ts rank.TermStat) error {
	acc := st.acc
	st.cand = acc.AppendTouched(st.cand[:0])
	candidates := st.cand
	slices.Sort(candidates)
	if len(candidates) == 0 {
		return nil
	}
	it, ok, err := e.FX.Large.Reader(t)
	if err != nil {
		return fmt.Errorf("core: term %d: %w", t, err)
	}
	if !ok {
		return nil
	}
	defer it.Close()
	last, ok := it.LastDoc()
	if !ok {
		return nil
	}
	for _, doc := range candidates {
		if err := poll.check(); err != nil {
			return err
		}
		if doc > last {
			break // ascending candidates have passed the list's end
		}
		// Block-bound membership check: when no block's id range covers
		// the candidate, the term certainly does not occur in it, and the
		// seek (and any block decode it would trigger) is skipped.
		if it.BlockMaxTF(doc) == 0 {
			continue
		}
		if !it.SeekGE(doc) {
			break
		}
		if p := it.At(); p.DocID == doc {
			docLen := e.FX.Stats.DocLen(doc)
			acc.Add(doc, e.Scorer.Score(int32(p.TF), docLen, ts, e.corpus))
		}
	}
	return it.Err()
}
