package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

// stepCancelCtx reports Canceled from its Nth Err() poll onward — a
// deterministic mid-loop cancellation that needs no goroutines or
// timing: the engine's own poll cadence triggers it.
type stepCancelCtx struct {
	context.Context
	calls atomic.Int64
	after int64
}

func newStepCancel(after int64) *stepCancelCtx {
	return &stepCancelCtx{Context: context.Background(), after: after}
}

func (c *stepCancelCtx) Err() error {
	if c.calls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

// TestSearchContextPreCancelled: a context already cancelled at entry
// must be refused before any postings work on all three engines.
func TestSearchContextPreCancelled(t *testing.T) {
	f := fix(t)
	ms, _ := buildMaxScore(t)
	p, _ := buildMulti(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := f.freqQueries[0]
	if _, err := f.engine.SearchContext(ctx, q, Options{N: 10, Mode: ModeFull}); !errors.Is(err, context.Canceled) {
		t.Errorf("Engine: err = %v, want context.Canceled", err)
	}
	if _, err := ms.SearchContext(ctx, q, 10); !errors.Is(err, context.Canceled) {
		t.Errorf("MaxScore: err = %v, want context.Canceled", err)
	}
	if _, err := p.SearchContext(ctx, q, ProgressiveOptions{N: 10}); !errors.Is(err, context.Canceled) {
		t.Errorf("Progressive: err = %v, want context.Canceled", err)
	}
}

// TestSearchContextMidQueryCancel: cancellation that fires after the
// entry check — mid postings traversal — is observed at block
// granularity and surfaces as the context error, not as a wrong answer.
func TestSearchContextMidQueryCancel(t *testing.T) {
	f := fix(t)
	ms, _ := buildMaxScore(t)
	p, _ := buildMulti(t)
	q := f.freqQueries[0] // frequent terms: long lists, many polls

	// after=2 lets the entry check (and one early poll) pass, so the
	// cancellation lands inside the evaluation loops.
	if _, err := f.engine.SearchContext(newStepCancel(2), q, Options{N: 10, Mode: ModeFull}); !errors.Is(err, context.Canceled) {
		t.Errorf("Engine: err = %v, want context.Canceled", err)
	}
	if _, err := ms.SearchContext(newStepCancel(2), q, 10); !errors.Is(err, context.Canceled) {
		t.Errorf("MaxScore: err = %v, want context.Canceled", err)
	}
	if _, err := p.SearchContext(newStepCancel(2), q, ProgressiveOptions{N: 10}); !errors.Is(err, context.Canceled) {
		t.Errorf("Progressive: err = %v, want context.Canceled", err)
	}
}

// TestSearchContextCancelEveryDepth sweeps the cancellation point
// across the whole poll sequence of one query: at every depth the
// engine must return context.Canceled (never a partial result), and
// once the sweep passes the query's total poll count, the full answer
// must come back bit-identical to the uncancelled run.
func TestSearchContextCancelEveryDepth(t *testing.T) {
	ms, _ := buildMaxScore(t)
	q := fix(t).freqQueries[1]

	probe := newStepCancel(1 << 62) // never fires; counts the polls
	want, err := ms.SearchContext(probe, q, 10)
	if err != nil {
		t.Fatal(err)
	}
	total := probe.calls.Load()
	if total < 2 {
		t.Fatalf("query polled ctx only %d times; fixture too small to sweep", total)
	}
	step := total/32 + 1 // ~32 sample points across the traversal
	for after := int64(0); after <= total; after += step {
		got, err := ms.SearchContext(newStepCancel(after), q, 10)
		if err == nil {
			// The poll sequence can legitimately be shorter here (the
			// stop-early paths) — but then the answer must be the truth.
			if len(got) != len(want) {
				t.Fatalf("after=%d: completed with %d results, want %d", after, len(got), len(want))
			}
			continue
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("after=%d: err = %v, want context.Canceled", after, err)
		}
		if got != nil {
			t.Fatalf("after=%d: cancelled search returned partial results", after)
		}
	}
	got, err := ms.SearchContext(newStepCancel(total+1), q, 10)
	if err != nil {
		t.Fatalf("after=total: %v", err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("post-sweep answer diverged at rank %d: %v vs %v", i, got[i], want[i])
		}
	}
}
