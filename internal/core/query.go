package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/collection"
	"repro/internal/lexicon"
)

// ParseQuery turns whitespace-separated term text into a Query against
// lex, the way a retrieval front-end would. Unknown terms are dropped
// (they can match nothing), duplicates are collapsed, and the result is
// sorted by term id as the engine expects. It errors only when no query
// term is known at all, which almost always indicates querying the wrong
// collection.
func ParseQuery(lex *lexicon.Lexicon, id int, text string) (collection.Query, error) {
	fields := strings.Fields(text)
	seen := map[lexicon.TermID]bool{}
	q := collection.Query{ID: id}
	for _, f := range fields {
		t := lex.Lookup(strings.ToLower(f))
		if t == lexicon.InvalidTerm || seen[t] {
			continue
		}
		seen[t] = true
		q.Terms = append(q.Terms, t)
	}
	if len(fields) > 0 && len(q.Terms) == 0 {
		return collection.Query{}, fmt.Errorf("core: no query term of %q exists in the collection", text)
	}
	sort.Slice(q.Terms, func(a, b int) bool { return q.Terms[a] < q.Terms[b] })
	return q, nil
}

// SearchText is a convenience wrapper: parse text against the engine's
// lexicon and search.
func (e *Engine) SearchText(text string, opts Options) (Result, error) {
	q, err := ParseQuery(e.FX.Lex, 0, text)
	if err != nil {
		return Result{}, err
	}
	return e.Search(q, opts)
}
