package core

import (
	"testing"

	"repro/internal/collection"
	"repro/internal/index"
	"repro/internal/postings"
	"repro/internal/rank"
	"repro/internal/storage"
	"repro/internal/xrand"
)

func buildMaxScore(t testing.TB) (*MaxScoreEngine, *index.Index) {
	t.Helper()
	f := fix(t)
	pool, err := storage.NewPool(storage.NewDisk(), 1<<14)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := index.Build(f.col, pool)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := NewMaxScore(idx, rank.NewBM25())
	if err != nil {
		t.Fatal(err)
	}
	return ms, idx
}

// TestMaxScoreExact: MaxScore must return exactly the full engine's
// ranking — it is a safe technique by construction.
func TestMaxScoreExact(t *testing.T) {
	f := fix(t)
	ms, _ := buildMaxScore(t)
	for _, queries := range [][]collection.Query{f.queries, f.freqQueries} {
		for _, q := range queries {
			want, err := f.engine.Search(q, Options{N: 10, Mode: ModeFull})
			if err != nil {
				t.Fatal(err)
			}
			got, err := ms.Search(q, 10)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want.Top) {
				t.Fatalf("query %d: %d results, want %d", q.ID, len(got), len(want.Top))
			}
			for i := range want.Top {
				if got[i].DocID != want.Top[i].DocID {
					t.Fatalf("query %d: position %d is doc %d, want %d",
						q.ID, i, got[i].DocID, want.Top[i].DocID)
				}
				if diff := got[i].Score - want.Top[i].Score; diff > 1e-9 || diff < -1e-9 {
					t.Fatalf("query %d: score mismatch at %d: %v vs %v",
						q.ID, i, got[i].Score, want.Top[i].Score)
				}
			}
		}
	}
}

// TestMaxScoreSavesDecoding: on queries mixing strong and weak terms, the
// pruning must decode fewer postings than exhaustive evaluation.
func TestMaxScoreSavesDecoding(t *testing.T) {
	f := fix(t)
	ms, idx := buildMaxScore(t)
	var exhaustive int64
	for _, q := range f.freqQueries {
		for _, term := range q.Terms {
			exhaustive += int64(idx.DocFreq(term))
		}
	}
	idx.Counters().Reset()
	for _, q := range f.freqQueries {
		if _, err := ms.Search(q, 10); err != nil {
			t.Fatal(err)
		}
	}
	pruned := idx.Counters().PostingsDecoded
	if pruned >= exhaustive {
		t.Errorf("MaxScore decoded %d postings vs exhaustive %d; pruning ineffective", pruned, exhaustive)
	}
}

// TestMaxScoreSmallN: tighter N means higher thresholds and more pruning.
func TestMaxScoreSmallN(t *testing.T) {
	f := fix(t)
	ms, idx := buildMaxScore(t)
	count := func(n int) int64 {
		idx.Counters().Reset()
		for _, q := range f.freqQueries {
			if _, err := ms.Search(q, n); err != nil {
				t.Fatal(err)
			}
		}
		return idx.Counters().PostingsDecoded
	}
	if d1, d100 := count(1), count(100); d1 > d100 {
		t.Errorf("N=1 decoded %d > N=100 decoded %d; threshold should tighten with smaller N", d1, d100)
	}
}

func TestMaxScoreValidation(t *testing.T) {
	f := fix(t)
	ms, _ := buildMaxScore(t)
	if _, err := ms.Search(f.queries[0], 0); err == nil {
		t.Error("N=0 accepted")
	}
	if _, err := NewMaxScore(nil, rank.NewBM25()); err == nil {
		t.Error("nil index accepted")
	}
	// Query with no indexed terms returns empty, not an error.
	res, err := ms.Search(collection.Query{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Error("empty query returned results")
	}
}

// TestBlockMaxEquivalence is the block-max acceptance check: on
// workloads whose lists span many blocks, the block-bound pruning must
// actually fire (SkipsTaken > 0), must save decoding versus exhaustive
// evaluation, and the results must stay byte-identical to full
// evaluation — the "same answer, less work" guarantee extended one
// level below whole-term MaxScore.
func TestBlockMaxEquivalence(t *testing.T) {
	f := fix(t)
	ms, idx := buildMaxScore(t)
	multiBlock := 0
	for id := 0; id < f.col.Lex.Size(); id++ {
		if idx.DocFreq(lexTermIDT(id)) > postings.BlockSize {
			multiBlock++
		}
	}
	if multiBlock == 0 {
		t.Fatal("fixture has no multi-block lists; the test would prove nothing")
	}
	idx.Counters().Reset()
	var exhaustive int64
	for _, q := range f.freqQueries {
		for _, term := range q.Terms {
			exhaustive += int64(idx.DocFreq(term))
		}
		want, err := f.engine.Search(q, Options{N: 10, Mode: ModeFull})
		if err != nil {
			t.Fatal(err)
		}
		got, err := ms.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want.Top) {
			t.Fatalf("query %d: %d results, want %d", q.ID, len(got), len(want.Top))
		}
		for i := range want.Top {
			if got[i].DocID != want.Top[i].DocID {
				t.Fatalf("query %d: rank %d is doc %d, want %d",
					q.ID, i, got[i].DocID, want.Top[i].DocID)
			}
		}
	}
	if skips := idx.Counters().LoadSkipsTaken(); skips == 0 {
		t.Error("block-max pruning never fired on the frequent-terms workload")
	}
	if dec := idx.Counters().LoadPostingsDecoded(); dec >= exhaustive {
		t.Errorf("block-max MaxScore decoded %d >= exhaustive %d", dec, exhaustive)
	}
}

// TestStatsTotalTokens: the build-time token total the engines now rank
// with must equal what the old per-constructor lexicon scan computed.
func TestStatsTotalTokens(t *testing.T) {
	f := fix(t)
	_, idx := buildMaxScore(t)
	var scanned int64
	for id := 0; id < f.col.Lex.Size(); id++ {
		scanned += f.col.Lex.Stats(lexTermIDT(id)).CollFreq
	}
	if idx.Stats.TotalTokens != scanned {
		t.Errorf("Stats.TotalTokens = %d, lexicon scan says %d", idx.Stats.TotalTokens, scanned)
	}
	if idx.Stats.TotalTokens != f.col.TotalTokens {
		t.Errorf("Stats.TotalTokens = %d, collection says %d", idx.Stats.TotalTokens, f.col.TotalTokens)
	}
}

// BenchmarkMaxScoreSearch tracks the DAAT hot path end to end: block
// decoding, bound administration, and heap maintenance over the
// frequent-terms workload.
func BenchmarkMaxScoreSearch(b *testing.B) {
	f := fix(b)
	ms, _ := buildMaxScore(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := f.freqQueries[i%len(f.freqQueries)]
		if _, err := ms.Search(q, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// TestMaxScoreRandomQueries widens the equivalence check beyond the fixed
// workloads: random term subsets of random sizes.
func TestMaxScoreRandomQueries(t *testing.T) {
	f := fix(t)
	ms, _ := buildMaxScore(t)
	rng := xrand.New(555)
	for trial := 0; trial < 60; trial++ {
		nTerms := 1 + rng.Intn(8)
		q := collection.Query{ID: trial}
		seen := map[int]bool{}
		for len(q.Terms) < nTerms {
			d := &f.col.Docs[rng.Intn(len(f.col.Docs))]
			if len(d.Terms) == 0 {
				continue
			}
			term := d.Terms[rng.Intn(len(d.Terms))].Term
			if !seen[int(term)] {
				seen[int(term)] = true
				q.Terms = append(q.Terms, term)
			}
		}
		n := 1 + rng.Intn(20)
		want, err := f.engine.Search(q, Options{N: n, Mode: ModeFull})
		if err != nil {
			t.Fatal(err)
		}
		got, err := ms.Search(q, n)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want.Top) {
			t.Fatalf("trial %d: %d results, want %d", trial, len(got), len(want.Top))
		}
		for i := range want.Top {
			if got[i].DocID != want.Top[i].DocID {
				t.Fatalf("trial %d: rank %d is doc %d, want %d", trial, i, got[i].DocID, want.Top[i].DocID)
			}
		}
	}
}
