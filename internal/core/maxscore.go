package core

import (
	"context"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/collection"
	"repro/internal/index"
	"repro/internal/lexicon"
	"repro/internal/postings"
	"repro/internal/rank"
	"repro/internal/topk"
)

// MaxScoreEngine evaluates exact top-N queries document-at-a-time with
// MaxScore pruning (Turtle & Flood's refinement of the ideas in Brown's
// thesis, which the paper's State of the Art cites as the IR side of
// early termination). Query terms are ordered by their score upper
// bounds; once the running top-N threshold exceeds the combined bound of
// the weakest terms, those terms stop driving the document cursor and are
// only probed for candidates that the strong terms surface.
//
// Two bound refinements from the block-aligned postings layout sharpen
// the classic algorithm without changing its answer:
//
//   - term bounds use the list's recorded maximum TF
//     (rank.UpperBoundTF), not the scorer's saturation limit, so the
//     essential-cursor frontier advances sooner; and
//   - before a non-essential cursor is probed for a candidate, the max
//     TF of the block that would contain the candidate bounds the
//     probe's best possible contribution — when even that cannot lift
//     the candidate past the threshold, the whole block decode is
//     skipped (Block-Max pruning, counted in SkipsTaken).
//
// MaxScore is the natural ablation against Step 1: it needs no physical
// fragmentation, loses no quality, but saves less than the unsafe
// strategy — quantifying what the fragmented design buys is experiment
// E12.
//
// All per-Search evaluation state (cursors, bound prefix, heap) lives in
// a pooled msState, and per-term score upper bounds are memoized for the
// engine's lifetime — valid because the engine's index view (lexicon
// statistics, per-list max TF) is immutable; the live layer builds a
// fresh engine per generation, which invalidates the memo for free. A
// warmed engine runs Search with zero heap allocations, and is safe for
// concurrent Search.
type MaxScoreEngine struct {
	Idx    *index.Index
	Scorer rank.Scorer

	corpus rank.CorpusStat

	states sync.Pool // *msState

	// bounds memoizes rank.UpperBoundTF per term — the "bound cache" of
	// the stacked cache design. Cheap to compute once, but the scorer's
	// log/division work is measurable when every query recomputes it for
	// every term.
	boundMu     sync.RWMutex
	bounds      map[lexicon.TermID]float64
	boundHits   atomic.Int64
	boundMisses atomic.Int64
}

// NewMaxScore builds a MaxScore engine over an unfragmented index. The
// corpus statistics come straight from index.Stats — recorded at build
// time, so no lexicon scan happens here.
func NewMaxScore(idx *index.Index, scorer rank.Scorer) (*MaxScoreEngine, error) {
	if idx == nil || scorer == nil {
		return nil, fmt.Errorf("core: nil index or scorer")
	}
	return NewMaxScoreWithCorpus(idx, scorer, idx.Stats.Corpus())
}

// NewMaxScoreWithCorpus builds a MaxScore engine that ranks with the
// given corpus statistics instead of the index's own. The live layer
// uses this the way parallel uses NewProgressiveWithCorpus: every sealed
// segment is scored with the *global* collection statistics, so a
// document's score is identical to what one index over the whole
// collection would compute.
func NewMaxScoreWithCorpus(idx *index.Index, scorer rank.Scorer, corpus rank.CorpusStat) (*MaxScoreEngine, error) {
	if idx == nil || scorer == nil {
		return nil, fmt.Errorf("core: nil index or scorer")
	}
	m := &MaxScoreEngine{Idx: idx, Scorer: scorer, corpus: corpus,
		bounds: make(map[lexicon.TermID]float64)}
	m.states.New = func() any { return &msState{} }
	return m, nil
}

// termBound returns the memoized score upper bound for term t whose
// list-wide max TF is maxTF. Safe for concurrent use; hit/miss counts
// feed the cache statistics.
func (m *MaxScoreEngine) termBound(t lexicon.TermID, maxTF uint32, ts rank.TermStat) float64 {
	m.boundMu.RLock()
	b, ok := m.bounds[t]
	m.boundMu.RUnlock()
	if ok {
		m.boundHits.Add(1)
		return b
	}
	b = rank.UpperBoundTF(m.Scorer, int32(maxTF), ts, m.corpus)
	m.boundMisses.Add(1)
	m.boundMu.Lock()
	m.bounds[t] = b
	m.boundMu.Unlock()
	return b
}

// BoundCacheStats reports the bound-memo hit/miss counts since the
// engine was built.
func (m *MaxScoreEngine) BoundCacheStats() (hits, misses int64) {
	return m.boundHits.Load(), m.boundMisses.Load()
}

// msState is the pooled per-Search evaluation state. The cursor arena
// is sized up front so &arena[i] pointers stay stable across appends.
type msState struct {
	arena    []msCursor
	cursors  []*msCursor
	prefixUB []float64
	heap     *topk.Heap
}

func (m *MaxScoreEngine) getState(terms int) *msState {
	st := m.states.Get().(*msState)
	if cap(st.arena) < terms {
		st.arena = make([]msCursor, 0, terms)
	}
	if cap(st.cursors) < terms {
		st.cursors = make([]*msCursor, 0, terms)
	}
	return st
}

// putState closes every open cursor and returns the state to the pool,
// dropping the pointers so pooled iterators are not retained.
func (m *MaxScoreEngine) putState(st *msState) {
	for i, c := range st.cursors {
		if c.it != nil {
			c.it.Close()
			c.it = nil
		}
		st.cursors[i] = nil
	}
	st.cursors = st.cursors[:0]
	st.arena = st.arena[:0]
	m.states.Put(st)
}

// msCursor tracks one term's iterator state during DAAT evaluation.
//
// A cursor starts *unmaterialized*: cur.DocID is the list's first
// document (known from the block index without decoding anything) and
// loaded is false. The first block is decoded only when the cursor's TF
// is actually needed — so a term that MaxScore never probes never
// decodes a single posting.
type msCursor struct {
	it        *postings.Iterator
	ts        rank.TermStat
	ub        float64
	cur       postings.Posting
	loaded    bool // cur.TF valid; iterator positioned at cur
	exhausted bool
}

// materialize decodes up to the cursor's logical position, filling in
// the TF. Only called when cur.DocID is a document the caller must
// score, so the decode is never wasted.
func (c *msCursor) materialize() error {
	if c.loaded || c.exhausted {
		return nil
	}
	if !c.it.SeekGE(c.cur.DocID) {
		c.exhausted = true
		return c.it.Err()
	}
	c.cur = c.it.At()
	c.loaded = true
	return nil
}

func (c *msCursor) advance() error {
	if err := c.materialize(); err != nil {
		return err
	}
	if c.exhausted {
		return nil
	}
	if c.it.Next() {
		c.cur = c.it.At()
		return nil
	}
	c.exhausted = true
	return c.it.Err()
}

func (c *msCursor) seekGE(doc uint32) error {
	if c.exhausted {
		return nil
	}
	if c.cur.DocID >= doc {
		return c.materialize()
	}
	if c.it.SeekGE(doc) {
		c.cur = c.it.At()
		c.loaded = true
		return nil
	}
	c.exhausted = true
	return c.it.Err()
}

// Search returns the exact top N for q. The result always equals full
// evaluation (verified by the test suite); only the work differs. It is
// SearchContext without cancellation.
func (m *MaxScoreEngine) Search(q collection.Query, n int) ([]rank.DocScore, error) {
	return m.SearchContext(context.Background(), q, n)
}

// SearchContext returns the exact top N for q, observing ctx. It is
// SearchContextInto with a nil destination buffer.
func (m *MaxScoreEngine) SearchContext(ctx context.Context, q collection.Query, n int) ([]rank.DocScore, error) {
	return m.SearchContextInto(ctx, q, n, nil)
}

// SearchContextInto returns the exact top N for q appended to dst,
// observing ctx: the DAAT loop polls for cancellation at candidate
// granularity (at most one postings block of decode work per open cursor
// between polls), so a cancelled or deadline-expired query returns
// ctx.Err() promptly instead of running to completion. With a dst of
// sufficient capacity a warmed engine performs the whole search without
// a single heap allocation.
func (m *MaxScoreEngine) SearchContextInto(ctx context.Context, q collection.Query, n int, dst []rank.DocScore) ([]rank.DocScore, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: N = %d must be positive", n)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Open cursors, ascending by upper bound. Nothing is decoded yet:
	// each cursor starts on its list's first document, read from the
	// block index.
	st := m.getState(len(q.Terms))
	defer m.putState(st)
	for _, t := range q.Terms {
		s := m.Idx.Lex.Stats(t)
		if s.DocFreq == 0 {
			continue
		}
		it, ok, err := m.Idx.Reader(t)
		if err != nil {
			return nil, fmt.Errorf("core: term %d: %w", t, err)
		}
		if !ok {
			continue
		}
		first, ok := it.FirstDoc()
		if !ok {
			// On a filtered iterator FirstDoc may have had to decode past a
			// tombstoned head, so ok=false can be a read failure rather
			// than an empty list — dropping the term on an error would
			// silently change the answer.
			err := it.Err()
			it.Close()
			if err != nil {
				return nil, fmt.Errorf("core: term %d: %w", t, err)
			}
			continue
		}
		st.arena = append(st.arena, msCursor{
			it:  it,
			ts:  rank.TermStat{DocFreq: int(s.DocFreq), CollFreq: s.CollFreq},
			cur: postings.Posting{DocID: first},
		})
		c := &st.arena[len(st.arena)-1]
		c.ub = m.termBound(t, it.MaxTF(), c.ts)
		st.cursors = append(st.cursors, c)
	}
	cursors := st.cursors
	if len(cursors) == 0 {
		return dst, nil
	}
	slices.SortFunc(cursors, func(a, b *msCursor) int {
		if a.ub < b.ub {
			return -1
		}
		if a.ub > b.ub {
			return 1
		}
		return 0
	})
	// prefixUB[i] = sum of upper bounds of cursors[0..i-1] (the weakest i).
	if cap(st.prefixUB) < len(cursors)+1 {
		st.prefixUB = make([]float64, len(cursors)+1)
	}
	prefixUB := st.prefixUB[:len(cursors)+1]
	prefixUB[0] = 0
	for i, c := range cursors {
		prefixUB[i+1] = prefixUB[i] + c.ub
	}

	if st.heap == nil {
		h, err := topk.NewHeap(n)
		if err != nil {
			return nil, err
		}
		st.heap = h
	} else if err := st.heap.Reset(n); err != nil {
		return nil, err
	}
	h := st.heap
	theta := func() float64 {
		if !h.Full() {
			return 0
		}
		min, _ := h.Min()
		return min.Score
	}
	// first = index of the first essential cursor: the weakest terms
	// [0, first) together cannot beat theta, so they never drive the
	// candidate choice. Grows monotonically as theta rises. The strict
	// inequality matters: a document reaching theta exactly can still
	// displace the heap minimum through the document-id tie-break, so
	// only a strictly smaller bound excludes safely.
	first := 0
	poll := ctxPoll{ctx: ctx}
	for {
		if err := poll.check(); err != nil {
			return nil, err
		}
		th := theta()
		for first < len(cursors) && prefixUB[first+1] < th {
			first++
		}
		if first >= len(cursors) {
			break // no term set can beat the current top N
		}
		// Next candidate: minimum current document over essential cursors.
		cand := uint32(0)
		found := false
		for _, c := range cursors[first:] {
			if c.exhausted {
				continue
			}
			if !found || c.cur.DocID < cand {
				cand = c.cur.DocID
				found = true
			}
		}
		if !found {
			break
		}
		docLen := m.Idx.Stats.DocLen(cand)
		// Score the essential terms and advance their cursors.
		var score float64
		for _, c := range cursors[first:] {
			if !c.exhausted && c.cur.DocID == cand {
				if err := c.materialize(); err != nil {
					return nil, err
				}
				if c.exhausted || c.cur.DocID != cand {
					continue
				}
				score += m.Scorer.Score(int32(c.cur.TF), docLen, c.ts, m.corpus)
				if err := c.advance(); err != nil {
					return nil, err
				}
			}
		}
		// Probe the non-essential terms strongest-first, aborting as soon
		// as even their combined remainder cannot lift the candidate past
		// the threshold. Before paying for a probe, the block bound: the
		// max TF of the block that would contain cand caps this term's
		// contribution, so if score + blockBound + (all weaker bounds)
		// still falls short of theta, the block is provably useless and
		// its decode is skipped. The offered score then misses at most
		// contributions of documents that cannot enter the heap, so the
		// result is unchanged — same answer, less work.
		for i := first - 1; i >= 0; i-- {
			if score+prefixUB[i+1] < th {
				break
			}
			c := cursors[i]
			if c.exhausted {
				continue
			}
			if c.cur.DocID > cand {
				continue // already past cand: no contribution
			}
			if c.cur.DocID < cand || !c.loaded {
				bmTF := c.it.BlockMaxTF(cand)
				if bmTF == 0 {
					// No block covers cand: the term certainly does not
					// occur in it. Nothing to decode, nothing to score.
					continue
				}
				blockUB := rank.UpperBoundTF(m.Scorer, int32(bmTF), c.ts, m.corpus)
				if score+blockUB+prefixUB[i] < th {
					// The block bound proves the probe useless before the
					// block decode is paid: a Block-Max skip.
					c.it.NoteBlockSkip()
					continue
				}
			}
			if err := c.seekGE(cand); err != nil {
				return nil, err
			}
			if !c.exhausted && c.cur.DocID == cand {
				score += m.Scorer.Score(int32(c.cur.TF), docLen, c.ts, m.corpus)
			}
		}
		h.Offer(rank.DocScore{DocID: cand, Score: score})
	}
	return h.AppendResults(dst), nil
}
