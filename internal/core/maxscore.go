package core

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/collection"
	"repro/internal/index"
	"repro/internal/postings"
	"repro/internal/rank"
	"repro/internal/topk"
)

// MaxScoreEngine evaluates exact top-N queries document-at-a-time with
// MaxScore pruning (Turtle & Flood's refinement of the ideas in Brown's
// thesis, which the paper's State of the Art cites as the IR side of
// early termination). Query terms are ordered by their score upper
// bounds; once the running top-N threshold exceeds the combined bound of
// the weakest terms, those terms stop driving the document cursor and are
// only probed for candidates that the strong terms surface.
//
// Two bound refinements from the block-aligned postings layout sharpen
// the classic algorithm without changing its answer:
//
//   - term bounds use the list's recorded maximum TF
//     (rank.UpperBoundTF), not the scorer's saturation limit, so the
//     essential-cursor frontier advances sooner; and
//   - before a non-essential cursor is probed for a candidate, the max
//     TF of the block that would contain the candidate bounds the
//     probe's best possible contribution — when even that cannot lift
//     the candidate past the threshold, the whole block decode is
//     skipped (Block-Max pruning, counted in SkipsTaken).
//
// MaxScore is the natural ablation against Step 1: it needs no physical
// fragmentation, loses no quality, but saves less than the unsafe
// strategy — quantifying what the fragmented design buys is experiment
// E12.
//
// A MaxScoreEngine keeps all evaluation state (cursors, heap) on the
// Search stack, so like Engine it is safe for concurrent Search.
type MaxScoreEngine struct {
	Idx    *index.Index
	Scorer rank.Scorer

	corpus rank.CorpusStat
}

// NewMaxScore builds a MaxScore engine over an unfragmented index. The
// corpus statistics come straight from index.Stats — recorded at build
// time, so no lexicon scan happens here.
func NewMaxScore(idx *index.Index, scorer rank.Scorer) (*MaxScoreEngine, error) {
	if idx == nil || scorer == nil {
		return nil, fmt.Errorf("core: nil index or scorer")
	}
	return NewMaxScoreWithCorpus(idx, scorer, idx.Stats.Corpus())
}

// NewMaxScoreWithCorpus builds a MaxScore engine that ranks with the
// given corpus statistics instead of the index's own. The live layer
// uses this the way parallel uses NewProgressiveWithCorpus: every sealed
// segment is scored with the *global* collection statistics, so a
// document's score is identical to what one index over the whole
// collection would compute.
func NewMaxScoreWithCorpus(idx *index.Index, scorer rank.Scorer, corpus rank.CorpusStat) (*MaxScoreEngine, error) {
	if idx == nil || scorer == nil {
		return nil, fmt.Errorf("core: nil index or scorer")
	}
	return &MaxScoreEngine{Idx: idx, Scorer: scorer, corpus: corpus}, nil
}

// msCursor tracks one term's iterator state during DAAT evaluation.
//
// A cursor starts *unmaterialized*: cur.DocID is the list's first
// document (known from the block index without decoding anything) and
// loaded is false. The first block is decoded only when the cursor's TF
// is actually needed — so a term that MaxScore never probes never
// decodes a single posting.
type msCursor struct {
	it        *postings.Iterator
	ts        rank.TermStat
	ub        float64
	cur       postings.Posting
	loaded    bool // cur.TF valid; iterator positioned at cur
	exhausted bool
}

// materialize decodes up to the cursor's logical position, filling in
// the TF. Only called when cur.DocID is a document the caller must
// score, so the decode is never wasted.
func (c *msCursor) materialize() error {
	if c.loaded || c.exhausted {
		return nil
	}
	if !c.it.SeekGE(c.cur.DocID) {
		c.exhausted = true
		return c.it.Err()
	}
	c.cur = c.it.At()
	c.loaded = true
	return nil
}

func (c *msCursor) advance() error {
	if err := c.materialize(); err != nil {
		return err
	}
	if c.exhausted {
		return nil
	}
	if c.it.Next() {
		c.cur = c.it.At()
		return nil
	}
	c.exhausted = true
	return c.it.Err()
}

func (c *msCursor) seekGE(doc uint32) error {
	if c.exhausted {
		return nil
	}
	if c.cur.DocID >= doc {
		return c.materialize()
	}
	if c.it.SeekGE(doc) {
		c.cur = c.it.At()
		c.loaded = true
		return nil
	}
	c.exhausted = true
	return c.it.Err()
}

// Search returns the exact top N for q. The result always equals full
// evaluation (verified by the test suite); only the work differs. It is
// SearchContext without cancellation.
func (m *MaxScoreEngine) Search(q collection.Query, n int) ([]rank.DocScore, error) {
	return m.SearchContext(context.Background(), q, n)
}

// SearchContext returns the exact top N for q, observing ctx: the DAAT
// loop polls for cancellation at candidate granularity (at most one
// postings block of decode work per open cursor between polls), so a
// cancelled or deadline-expired query returns ctx.Err() promptly instead
// of running to completion.
func (m *MaxScoreEngine) SearchContext(ctx context.Context, q collection.Query, n int) ([]rank.DocScore, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: N = %d must be positive", n)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Open cursors, ascending by upper bound. Nothing is decoded yet:
	// each cursor starts on its list's first document, read from the
	// block index.
	cursors := make([]*msCursor, 0, len(q.Terms))
	defer func() {
		for _, c := range cursors {
			c.it.Close()
		}
	}()
	for _, t := range q.Terms {
		s := m.Idx.Lex.Stats(t)
		if s.DocFreq == 0 {
			continue
		}
		it, ok, err := m.Idx.Reader(t)
		if err != nil {
			return nil, fmt.Errorf("core: term %d: %w", t, err)
		}
		if !ok {
			continue
		}
		first, ok := it.FirstDoc()
		if !ok {
			// On a filtered iterator FirstDoc may have had to decode past a
			// tombstoned head, so ok=false can be a read failure rather
			// than an empty list — dropping the term on an error would
			// silently change the answer.
			err := it.Err()
			it.Close()
			if err != nil {
				return nil, fmt.Errorf("core: term %d: %w", t, err)
			}
			continue
		}
		c := &msCursor{
			it:  it,
			ts:  rank.TermStat{DocFreq: int(s.DocFreq), CollFreq: s.CollFreq},
			cur: postings.Posting{DocID: first},
		}
		c.ub = rank.UpperBoundTF(m.Scorer, int32(it.MaxTF()), c.ts, m.corpus)
		cursors = append(cursors, c)
	}
	if len(cursors) == 0 {
		return nil, nil
	}
	sort.Slice(cursors, func(a, b int) bool { return cursors[a].ub < cursors[b].ub })
	// prefixUB[i] = sum of upper bounds of cursors[0..i-1] (the weakest i).
	prefixUB := make([]float64, len(cursors)+1)
	for i, c := range cursors {
		prefixUB[i+1] = prefixUB[i] + c.ub
	}

	h, err := topk.NewHeap(n)
	if err != nil {
		return nil, err
	}
	theta := func() float64 {
		if !h.Full() {
			return 0
		}
		min, _ := h.Min()
		return min.Score
	}
	// first = index of the first essential cursor: the weakest terms
	// [0, first) together cannot beat theta, so they never drive the
	// candidate choice. Grows monotonically as theta rises. The strict
	// inequality matters: a document reaching theta exactly can still
	// displace the heap minimum through the document-id tie-break, so
	// only a strictly smaller bound excludes safely.
	first := 0
	poll := ctxPoll{ctx: ctx}
	for {
		if err := poll.check(); err != nil {
			return nil, err
		}
		th := theta()
		for first < len(cursors) && prefixUB[first+1] < th {
			first++
		}
		if first >= len(cursors) {
			break // no term set can beat the current top N
		}
		// Next candidate: minimum current document over essential cursors.
		cand := uint32(0)
		found := false
		for _, c := range cursors[first:] {
			if c.exhausted {
				continue
			}
			if !found || c.cur.DocID < cand {
				cand = c.cur.DocID
				found = true
			}
		}
		if !found {
			break
		}
		docLen := m.Idx.Stats.DocLen(cand)
		// Score the essential terms and advance their cursors.
		var score float64
		for _, c := range cursors[first:] {
			if !c.exhausted && c.cur.DocID == cand {
				if err := c.materialize(); err != nil {
					return nil, err
				}
				if c.exhausted || c.cur.DocID != cand {
					continue
				}
				score += m.Scorer.Score(int32(c.cur.TF), docLen, c.ts, m.corpus)
				if err := c.advance(); err != nil {
					return nil, err
				}
			}
		}
		// Probe the non-essential terms strongest-first, aborting as soon
		// as even their combined remainder cannot lift the candidate past
		// the threshold. Before paying for a probe, the block bound: the
		// max TF of the block that would contain cand caps this term's
		// contribution, so if score + blockBound + (all weaker bounds)
		// still falls short of theta, the block is provably useless and
		// its decode is skipped. The offered score then misses at most
		// contributions of documents that cannot enter the heap, so the
		// result is unchanged — same answer, less work.
		for i := first - 1; i >= 0; i-- {
			if score+prefixUB[i+1] < th {
				break
			}
			c := cursors[i]
			if c.exhausted {
				continue
			}
			if c.cur.DocID > cand {
				continue // already past cand: no contribution
			}
			if c.cur.DocID < cand || !c.loaded {
				bmTF := c.it.BlockMaxTF(cand)
				if bmTF == 0 {
					// No block covers cand: the term certainly does not
					// occur in it. Nothing to decode, nothing to score.
					continue
				}
				blockUB := rank.UpperBoundTF(m.Scorer, int32(bmTF), c.ts, m.corpus)
				if score+blockUB+prefixUB[i] < th {
					// The block bound proves the probe useless before the
					// block decode is paid: a Block-Max skip.
					c.it.NoteBlockSkip()
					continue
				}
			}
			if err := c.seekGE(cand); err != nil {
				return nil, err
			}
			if !c.exhausted && c.cur.DocID == cand {
				score += m.Scorer.Score(int32(c.cur.TF), docLen, c.ts, m.corpus)
			}
		}
		h.Offer(rank.DocScore{DocID: cand, Score: score})
	}
	return h.Results(), nil
}
