package core

import (
	"fmt"
	"sort"

	"repro/internal/collection"
	"repro/internal/index"
	"repro/internal/lexicon"
	"repro/internal/postings"
	"repro/internal/rank"
	"repro/internal/topk"
)

// MaxScoreEngine evaluates exact top-N queries document-at-a-time with
// MaxScore pruning (Turtle & Flood's refinement of the ideas in Brown's
// thesis, which the paper's State of the Art cites as the IR side of
// early termination). Query terms are ordered by their score upper
// bounds; once the running top-N threshold exceeds the combined bound of
// the weakest terms, those terms stop driving the document cursor and are
// only probed for candidates that the strong terms surface.
//
// MaxScore is the natural ablation against Step 1: it needs no physical
// fragmentation, loses no quality, but saves less than the unsafe
// strategy — quantifying what the fragmented design buys is experiment
// E12.
//
// A MaxScoreEngine keeps all evaluation state (cursors, heap) on the
// Search stack, so like Engine it is safe for concurrent Search.
type MaxScoreEngine struct {
	Idx    *index.Index
	Scorer rank.Scorer

	corpus rank.CorpusStat
}

// NewMaxScore builds a MaxScore engine over an unfragmented index.
func NewMaxScore(idx *index.Index, scorer rank.Scorer) (*MaxScoreEngine, error) {
	if idx == nil || scorer == nil {
		return nil, fmt.Errorf("core: nil index or scorer")
	}
	var totalTokens int64
	for id := 0; id < idx.Lex.Size(); id++ {
		totalTokens += idx.Lex.Stats(lexicon.TermID(id)).CollFreq
	}
	return &MaxScoreEngine{
		Idx:    idx,
		Scorer: scorer,
		corpus: rank.CorpusStat{
			NumDocs:     idx.Stats.NumDocs,
			AvgDocLen:   idx.Stats.AvgDocLen,
			TotalTokens: totalTokens,
		},
	}, nil
}

// msCursor tracks one term's iterator state during DAAT evaluation.
type msCursor struct {
	it        *postings.Iterator
	ts        rank.TermStat
	ub        float64
	cur       postings.Posting
	exhausted bool
}

func (c *msCursor) advance() error {
	if c.it.Next() {
		c.cur = c.it.At()
		return nil
	}
	c.exhausted = true
	return c.it.Err()
}

func (c *msCursor) seekGE(doc uint32) error {
	if c.exhausted {
		return nil
	}
	if c.cur.DocID >= doc {
		return nil
	}
	if c.it.SeekGE(doc) {
		c.cur = c.it.At()
		return nil
	}
	c.exhausted = true
	return c.it.Err()
}

// Search returns the exact top N for q. The result always equals full
// evaluation (verified by the test suite); only the work differs.
func (m *MaxScoreEngine) Search(q collection.Query, n int) ([]rank.DocScore, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: N = %d must be positive", n)
	}
	// Open cursors, ascending by upper bound.
	cursors := make([]*msCursor, 0, len(q.Terms))
	for _, t := range q.Terms {
		s := m.Idx.Lex.Stats(t)
		if s.DocFreq == 0 {
			continue
		}
		it, ok, err := m.Idx.Reader(t)
		if err != nil {
			return nil, fmt.Errorf("core: term %d: %w", t, err)
		}
		if !ok {
			continue
		}
		c := &msCursor{
			it: it,
			ts: rank.TermStat{DocFreq: int(s.DocFreq), CollFreq: s.CollFreq},
		}
		c.ub = m.Scorer.UpperBound(c.ts, m.corpus)
		if err := c.advance(); err != nil {
			return nil, err
		}
		if !c.exhausted {
			cursors = append(cursors, c)
		}
	}
	if len(cursors) == 0 {
		return nil, nil
	}
	sort.Slice(cursors, func(a, b int) bool { return cursors[a].ub < cursors[b].ub })
	// prefixUB[i] = sum of upper bounds of cursors[0..i-1] (the weakest i).
	prefixUB := make([]float64, len(cursors)+1)
	for i, c := range cursors {
		prefixUB[i+1] = prefixUB[i] + c.ub
	}

	h := topk.NewHeap(n)
	theta := func() float64 {
		if !h.Full() {
			return 0
		}
		min, _ := h.Min()
		return min.Score
	}
	// first = index of the first essential cursor: the weakest terms
	// [0, first) together cannot beat theta, so they never drive the
	// candidate choice. Grows monotonically as theta rises. The strict
	// inequality matters: a document reaching theta exactly can still
	// displace the heap minimum through the document-id tie-break, so
	// only a strictly smaller bound excludes safely.
	first := 0
	for {
		th := theta()
		for first < len(cursors) && prefixUB[first+1] < th {
			first++
		}
		if first >= len(cursors) {
			break // no term set can beat the current top N
		}
		// Next candidate: minimum current document over essential cursors.
		cand := uint32(0)
		found := false
		for _, c := range cursors[first:] {
			if c.exhausted {
				continue
			}
			if !found || c.cur.DocID < cand {
				cand = c.cur.DocID
				found = true
			}
		}
		if !found {
			break
		}
		docLen := m.Idx.Stats.DocLen(cand)
		// Score the essential terms and advance their cursors.
		var score float64
		for _, c := range cursors[first:] {
			if !c.exhausted && c.cur.DocID == cand {
				score += m.Scorer.Score(int32(c.cur.TF), docLen, c.ts, m.corpus)
				if err := c.advance(); err != nil {
					return nil, err
				}
			}
		}
		// Probe the non-essential terms strongest-first, aborting as soon
		// as even their combined remainder cannot lift the candidate past
		// the threshold.
		for i := first - 1; i >= 0; i-- {
			if score+prefixUB[i+1] < th {
				break
			}
			c := cursors[i]
			if err := c.seekGE(cand); err != nil {
				return nil, err
			}
			if !c.exhausted && c.cur.DocID == cand {
				score += m.Scorer.Score(int32(c.cur.TF), docLen, c.ts, m.corpus)
			}
		}
		h.Offer(rank.DocScore{DocID: cand, Score: score})
	}
	return h.Results(), nil
}
