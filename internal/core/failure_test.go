package core

import (
	"errors"
	"testing"

	"repro/internal/collection"
	"repro/internal/index"
	"repro/internal/rank"
	"repro/internal/storage"
)

// TestSearchSurfacesDiskErrors injects storage failures under a live
// engine and verifies every strategy returns the error instead of
// panicking or silently returning partial rankings.
func TestSearchSurfacesDiskErrors(t *testing.T) {
	col, err := collection.Generate(collection.Config{
		NumDocs: 300, VocabSize: 8000, MeanDocLen: 120, Seed: 91,
	})
	if err != nil {
		t.Fatal(err)
	}
	disk := storage.NewDisk()
	// A tiny pool forces physical reads during search (no full caching).
	pool, err := storage.NewPool(disk, 4)
	if err != nil {
		t.Fatal(err)
	}
	fx, err := index.BuildFragmented(col, pool, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := NewEngine(fx, rank.NewBM25())
	if err != nil {
		t.Fatal(err)
	}
	queries, err := collection.GenerateQueries(col, collection.QueryConfig{
		NumQueries: 5, MinTerms: 3, MaxTerms: 6, MaxDocFreqFrac: 0.5, Seed: 92,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Sanity: searches work before injection.
	if _, err := engine.Search(queries[0], Options{N: 5, Mode: ModeFull}); err != nil {
		t.Fatal(err)
	}

	// Cold cache so the next reads must touch the (failing) disk.
	if err := pool.DropAll(); err != nil {
		t.Fatal(err)
	}
	disk.FailReadsAfter(0)
	defer disk.FailReadsAfter(-1)
	sawError := false
	for _, q := range queries {
		for _, opts := range []Options{
			{N: 5, Mode: ModeFull},
			{N: 5, Mode: ModeSafe, SwitchThreshold: 2},
			{N: 5, Mode: ModeSafe, SwitchThreshold: 2, ProbeLarge: true},
		} {
			_, err := engine.Search(q, opts)
			if err != nil {
				if !errors.Is(err, storage.ErrInjected) {
					t.Fatalf("error lost its cause: %v", err)
				}
				sawError = true
			}
		}
	}
	if !sawError {
		t.Fatal("no search hit the injected failure; pool too large for the test")
	}
}
