package core

import "context"

// ctxPollMask throttles context polling on the evaluation hot paths:
// ctx.Err() is consulted once every ctxPollMask+1 loop steps. The stride
// matches postings.BlockSize, so a cancelled query stops within roughly
// one postings block of work per open cursor — the "block granularity"
// promise the serving layer's deadlines rely on — while the steady-state
// cost is one counter increment per posting.
const ctxPollMask = 127

// ctxPoll is the throttled cancellation probe the engines thread through
// their inner loops. The zero value (with ctx set) is ready to use; it is
// deliberately value-embedded in per-Search stack state so polling never
// allocates.
type ctxPoll struct {
	ctx  context.Context
	tick uint32
}

// check returns the context's error on every (ctxPollMask+1)-th call,
// nil otherwise.
func (c *ctxPoll) check() error {
	c.tick++
	if c.tick&ctxPollMask != 0 {
		return nil
	}
	return c.ctx.Err()
}
