package core

import (
	"fmt"

	"repro/internal/collection"
	"repro/internal/cost"
	"repro/internal/postings"
)

// PlanAlternative identifies one strategy the planner prices.
type PlanAlternative int

// The plan space of the fragmented engine.
const (
	// PlanUnsafe reads only the small fragment.
	PlanUnsafe PlanAlternative = iota
	// PlanSafeStream reads the small fragment plus full large-fragment
	// lists.
	PlanSafeStream
	// PlanSafeProbe reads the small fragment and probes large-fragment
	// lists with the candidate set through the non-dense index.
	PlanSafeProbe
)

// String names the alternative in experiment output.
func (p PlanAlternative) String() string {
	switch p {
	case PlanUnsafe:
		return "unsafe"
	case PlanSafeStream:
		return "safe-stream"
	case PlanSafeProbe:
		return "safe-probe"
	default:
		return "unknown"
	}
}

// PlanChoice is the planner's decision with its cost predictions, kept for
// the cost-model-accuracy experiment (E9).
type PlanChoice struct {
	Chosen    PlanAlternative
	Coverage  float64
	Predicted map[PlanAlternative]cost.IRPlanCost
}

// Planner performs Step 3's cost-based strategy selection: it predicts
// each alternative's cost with the centralized IR cost model and picks the
// cheapest plan that meets the quality target.
type Planner struct {
	Engine *Engine
	Model  cost.IRModel
	// QualityTarget is the minimum predicted coverage at which the unsafe
	// plan is considered quality-safe. Default 0.8.
	QualityTarget float64
	// ProbeQualityFloor guards the probe plan: candidate probing restricts
	// large-term scoring to documents the small pass surfaced, so when
	// coverage is very low the candidate set itself is unreliable and
	// streaming is the only quality-safe consultation. Below this coverage
	// the planner refuses the probe plan. Default 0.3.
	ProbeQualityFloor float64
	// PageWeight prices a page read in posting-decode units. Default
	// cost.DefaultPageWeight.
	PageWeight float64
}

// NewPlanner builds a planner whose cost model is calibrated against the
// engine's actual fragments (bytes per posting measured, not assumed).
func NewPlanner(e *Engine) (*Planner, error) {
	bytes := e.FX.Small.SizeBytes() + e.FX.Large.SizeBytes()
	total := e.FX.Small.TotalPostings() + e.FX.Large.TotalPostings()
	model, err := cost.CalibrateIR(bytes, total)
	if err != nil {
		return nil, fmt.Errorf("core: planner calibration: %w", err)
	}
	return &Planner{
		Engine:            e,
		Model:             model,
		QualityTarget:     0.8,
		ProbeQualityFloor: 0.3,
		PageWeight:        cost.DefaultPageWeight,
	}, nil
}

// Plan prices the alternatives for q and picks one.
func (p *Planner) Plan(q collection.Query) PlanChoice {
	choice := PlanChoice{
		Coverage:  p.Engine.Coverage(q),
		Predicted: make(map[PlanAlternative]cost.IRPlanCost),
	}
	var smallDFs, largeDFs []int
	for _, t := range q.Terms {
		df := p.Engine.FX.DocFreq(t)
		if df == 0 {
			continue
		}
		if p.Engine.FX.Small.Has(t) {
			smallDFs = append(smallDFs, df)
		} else {
			largeDFs = append(largeDFs, df)
		}
	}
	smallCost := p.Model.PlanCost(smallDFs)
	choice.Predicted[PlanUnsafe] = smallCost

	stream := p.Model.PlanCost(largeDFs)
	choice.Predicted[PlanSafeStream] = addCost(smallCost, stream)

	// Candidate cardinality estimate: union of small-list postings under
	// independence, the standard textbook estimator.
	candidates := p.estimateCandidates(smallDFs)
	probe := cost.IRPlanCost{}
	for _, df := range largeDFs {
		c := p.Model.SparseProbeCost(df, candidates, postings.BlockSize)
		probe.Pages += c.Pages
		probe.Decodes += c.Decodes
	}
	choice.Predicted[PlanSafeProbe] = addCost(smallCost, probe)

	if choice.Coverage >= p.QualityTarget || len(largeDFs) == 0 {
		choice.Chosen = PlanUnsafe
		return choice
	}
	probeAllowed := choice.Coverage >= p.ProbeQualityFloor && candidates > 0
	if probeAllowed && choice.Predicted[PlanSafeProbe].Weighted(p.PageWeight) <=
		choice.Predicted[PlanSafeStream].Weighted(p.PageWeight) {
		choice.Chosen = PlanSafeProbe
	} else {
		choice.Chosen = PlanSafeStream
	}
	return choice
}

// estimateCandidates predicts how many documents the small pass touches.
func (p *Planner) estimateCandidates(smallDFs []int) int {
	n := float64(p.Engine.FX.Stats.NumDocs)
	if n == 0 {
		return 0
	}
	missAll := 1.0
	for _, df := range smallDFs {
		missAll *= 1 - float64(df)/n
	}
	return int(n * (1 - missAll))
}

// Run plans q, executes the chosen alternative, and returns both.
func (p *Planner) Run(q collection.Query, n int) (Result, PlanChoice, error) {
	choice := p.Plan(q)
	opts := Options{N: n}
	switch choice.Chosen {
	case PlanUnsafe:
		opts.Mode = ModeUnsafe
	case PlanSafeStream:
		// Force the switch the planner already decided on.
		opts.Mode = ModeSafe
		opts.SwitchThreshold = 2 // always above coverage, so always switch
	case PlanSafeProbe:
		opts.Mode = ModeSafe
		opts.SwitchThreshold = 2
		opts.ProbeLarge = true
	}
	res, err := p.Engine.Search(q, opts)
	return res, choice, err
}

func addCost(a, b cost.IRPlanCost) cost.IRPlanCost {
	return cost.IRPlanCost{Pages: a.Pages + b.Pages, Decodes: a.Decodes + b.Decodes}
}
