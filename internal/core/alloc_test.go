package core

import (
	"context"
	"runtime"
	"testing"

	"repro/internal/rank"
)

// The allocation gates below enforce the steady-state budget the caching
// work depends on: a warmed MaxScore or Progressive engine must run a
// complete search with ZERO heap allocations. They are skipped under the
// race detector (raceEnabled), which deliberately randomizes sync.Pool
// behavior, and they force a GC before measuring so a pool emptied by an
// earlier collection is refilled during warmup, not during measurement.

func TestMaxScoreSearchAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts at random under the race detector")
	}
	ms, _ := buildMaxScore(t)
	f := fix(t)
	ctx := context.Background()
	dst := make([]rank.DocScore, 0, 16)

	// Warm every pooled structure (state, heap, iterators, bound memo)
	// with the exact query mix the measurement uses.
	for _, q := range f.queries {
		var err error
		dst, err = ms.SearchContextInto(ctx, q, 10, dst[:0])
		if err != nil {
			t.Fatal(err)
		}
	}
	runtime.GC()

	for _, q := range f.queries[:8] {
		q := q
		allocs := testing.AllocsPerRun(20, func() {
			var err error
			dst, err = ms.SearchContextInto(ctx, q, 10, dst[:0])
			if err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Fatalf("warmed MaxScore search allocated %.1f allocs/op, want 0 (query %v)", allocs, q.Terms)
		}
	}
}

func TestProgressiveSearchAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts at random under the race detector")
	}
	p, _ := buildMulti(t)
	f := fix(t)
	ctx := context.Background()
	opts := ProgressiveOptions{N: 10}
	dst := make([]rank.DocScore, 0, 16)

	for _, q := range f.queries {
		r, err := p.SearchContextInto(ctx, q, opts, dst[:0])
		if err != nil {
			t.Fatal(err)
		}
		dst = r.Top
	}
	runtime.GC()

	for _, q := range f.queries[:8] {
		q := q
		allocs := testing.AllocsPerRun(20, func() {
			r, err := p.SearchContextInto(ctx, q, opts, dst[:0])
			if err != nil {
				t.Fatal(err)
			}
			dst = r.Top
		})
		if allocs != 0 {
			t.Fatalf("warmed Progressive search allocated %.1f allocs/op, want 0 (query %v)", allocs, q.Terms)
		}
	}
}
