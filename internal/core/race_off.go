//go:build !race

package core

// raceEnabled reports whether the race detector is compiled in. The
// allocation gates skip under race: the detector makes sync.Pool drop
// Puts at random, so AllocsPerRun measurements become meaningless.
const raceEnabled = false
