package core

import (
	"testing"

	"repro/internal/collection"
	"repro/internal/index"
	"repro/internal/rank"
	"repro/internal/storage"
)

// These tests are the engine-level half of the pluggable-backend
// contract: every engine — Engine over the two-fragment index, MaxScore
// over the plain index, Progressive over the chain — must return
// byte-identical top-N answers whether the postings live in RAM or in a
// persisted segment served through a deliberately small buffer pool.

func pagedWorkload(t *testing.T) (*collection.Collection, []collection.Query) {
	t.Helper()
	col, err := collection.Generate(collection.Config{
		NumDocs: 300, VocabSize: 6000, MeanDocLen: 100, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	queries, err := collection.GenerateQueries(col, collection.QueryConfig{
		NumQueries: 25, MinTerms: 2, MaxTerms: 5, MaxDocFreqFrac: 0.5, Seed: 78,
	})
	if err != nil {
		t.Fatal(err)
	}
	return col, queries
}

func memPool(t *testing.T) *storage.Pool {
	t.Helper()
	p, err := storage.NewPool(storage.NewDisk(), 1<<13)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// tinyPool reopens dir with a pool smaller than the segment.
func tinyPool(t *testing.T, dir string) *storage.Pool {
	t.Helper()
	pool, fd, err := index.OpenPool(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fd.Close() })
	if fd.NumPages() <= pool.Capacity() {
		t.Fatalf("segment %d pages not larger than %d-frame pool", fd.NumPages(), pool.Capacity())
	}
	return pool
}

func sameTop(t *testing.T, label string, want, got []rank.DocScore) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: rank %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

func TestMaxScorePagedEquivalence(t *testing.T) {
	col, queries := pagedWorkload(t)
	idx, err := index.Build(col, memPool(t))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := idx.Persist(dir); err != nil {
		t.Fatal(err)
	}
	opened, err := index.Open(dir, tinyPool(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	memMS, err := NewMaxScore(idx, rank.NewBM25())
	if err != nil {
		t.Fatal(err)
	}
	pagedMS, err := NewMaxScore(opened, rank.NewBM25())
	if err != nil {
		t.Fatal(err)
	}
	for qi, q := range queries {
		want, err := memMS.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		got, err := pagedMS.Search(q, 10)
		if err != nil {
			t.Fatalf("query %d over paged backend: %v", qi, err)
		}
		sameTop(t, "maxscore", want, got)
	}
	if opened.Counters().BlocksFaulted == 0 {
		t.Error("paged search faulted zero blocks")
	}
}

func TestEnginePagedEquivalence(t *testing.T) {
	col, queries := pagedWorkload(t)
	fx, err := index.BuildFragmented(col, memPool(t), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := fx.Persist(dir); err != nil {
		t.Fatal(err)
	}
	opened, err := index.OpenFragmented(dir, tinyPool(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	memEng, err := NewEngine(fx, rank.NewBM25())
	if err != nil {
		t.Fatal(err)
	}
	pagedEng, err := NewEngine(opened, rank.NewBM25())
	if err != nil {
		t.Fatal(err)
	}
	modes := []Options{
		{N: 10, Mode: ModeFull},
		{N: 10, Mode: ModeUnsafe},
		{N: 10, Mode: ModeSafe, SwitchThreshold: 0.8},
		{N: 10, Mode: ModeSafe, SwitchThreshold: 2, ProbeLarge: true},
	}
	for qi, q := range queries {
		for mi, opts := range modes {
			want, err := memEng.Search(q, opts)
			if err != nil {
				t.Fatal(err)
			}
			got, err := pagedEng.Search(q, opts)
			if err != nil {
				t.Fatalf("query %d mode %d over paged backend: %v", qi, mi, err)
			}
			if want.Coverage != got.Coverage || want.Switched != got.Switched {
				t.Fatalf("query %d mode %d: plan diverged across backends", qi, mi)
			}
			sameTop(t, "engine", want.Top, got.Top)
		}
	}
}

func TestProgressivePagedEquivalence(t *testing.T) {
	col, queries := pagedWorkload(t)
	mx, err := index.BuildMulti(col, memPool(t), []float64{0.05, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := mx.Persist(dir); err != nil {
		t.Fatal(err)
	}
	opened, err := index.OpenMulti(dir, tinyPool(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	memProg, err := NewProgressive(mx, rank.NewBM25())
	if err != nil {
		t.Fatal(err)
	}
	pagedProg, err := NewProgressive(opened, rank.NewBM25())
	if err != nil {
		t.Fatal(err)
	}
	for qi, q := range queries {
		want, err := memProg.Search(q, ProgressiveOptions{N: 10})
		if err != nil {
			t.Fatal(err)
		}
		got, err := pagedProg.Search(q, ProgressiveOptions{N: 10})
		if err != nil {
			t.Fatalf("query %d over paged backend: %v", qi, err)
		}
		if want.FragmentsUsed != got.FragmentsUsed || want.Exact != got.Exact {
			t.Fatalf("query %d: stopping behaviour diverged across backends", qi)
		}
		sameTop(t, "progressive", want.Top, got.Top)
	}
}
