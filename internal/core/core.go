package core
