// Multimedia: integrated text ⊕ feature top-N queries — the query class
// the paper's research programme targets. A text engine and a synthetic
// feature dataset (stand-in for colour histograms) are fused by weighted
// sum, and the middleware algorithms (FA, TA, NRA) are compared against
// exhaustive evaluation on access counts.
package main

import (
	"fmt"
	"log"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/rank"
	"repro/internal/storage"
	"repro/internal/vector"
)

func main() {
	col, err := collection.Generate(collection.Config{
		NumDocs: 3000, VocabSize: 40000, MeanDocLen: 200, Seed: 31,
	})
	if err != nil {
		log.Fatal(err)
	}
	pool, err := storage.NewPool(storage.NewDisk(), 1<<15)
	if err != nil {
		log.Fatal(err)
	}
	fx, err := index.BuildFragmented(col, pool, 0.10)
	if err != nil {
		log.Fatal(err)
	}
	engine, err := core.NewEngine(fx, rank.NewBM25())
	if err != nil {
		log.Fatal(err)
	}
	// One feature vector per document: the MM content.
	data, err := vector.Generate(vector.Config{
		NumObjects: len(col.Docs), Dim: 16, NumClusters: 12, Seed: 32,
	})
	if err != nil {
		log.Fatal(err)
	}
	fusion, err := core.NewFusion(engine, data)
	if err != nil {
		log.Fatal(err)
	}
	queries, err := collection.GenerateQueries(col, collection.QueryConfig{
		NumQueries: 5, MinTerms: 3, MaxTerms: 5, MaxDocFreqFrac: 0.05, Seed: 33,
	})
	if err != nil {
		log.Fatal(err)
	}

	for qi, q := range queries {
		fq := core.FusionQuery{
			Text:    q,
			Points:  []vector.Vector{data.Vecs[qi*100]}, // query by example
			Weights: []float64{1.0, 0.8},
		}
		fmt.Printf("query %d: %d text terms + 1 feature point\n", qi, len(q.Terms))
		var truthTop uint32
		for _, alg := range []core.Algorithm{core.AlgNaive, core.AlgFA, core.AlgTA, core.AlgNRA} {
			res, err := fusion.Search(fq, 5, alg, core.ModeFull)
			if err != nil {
				log.Fatal(err)
			}
			if alg == core.AlgNaive && len(res.Top) > 0 {
				truthTop = res.Top[0].DocID
			}
			marker := ""
			if len(res.Top) > 0 && res.Top[0].DocID == truthTop && alg != core.AlgNaive {
				marker = " (top answer matches naive)"
			}
			fmt.Printf("  %-5s: sorted=%6d random=%6d top=%v%s\n",
				alg, res.Accesses.Sorted, res.Accesses.Random, ids(res.Top), marker)
		}
		fmt.Println()
	}
}

// ids projects a result list to document ids for compact printing.
func ids(top []rank.DocScore) []uint32 {
	out := make([]uint32, len(top))
	for i, d := range top {
		out[i] = d.DocID
	}
	return out
}
