// Text retrieval: a TREC-style evaluation run. A query workload is
// executed under every strategy (full, unsafe, safe at two thresholds,
// cost-based planner) and scored against the exhaustive ranking with the
// standard IR metrics — the experiment design of [VH99] that produced the
// paper's 60%-speedup / 30%-quality-drop numbers.
package main

import (
	"fmt"
	"log"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/quality"
	"repro/internal/rank"
	"repro/internal/storage"
)

func main() {
	col, err := collection.Generate(collection.Config{
		NumDocs: 4000, VocabSize: 50000, MeanDocLen: 200, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	pool, err := storage.NewPool(storage.NewDisk(), 1<<15)
	if err != nil {
		log.Fatal(err)
	}
	fx, err := index.BuildFragmented(col, pool, 0.08)
	if err != nil {
		log.Fatal(err)
	}
	// The paper's group ranked with Hiemstra's language model in mi:Ror.
	engine, err := core.NewEngine(fx, rank.NewLM())
	if err != nil {
		log.Fatal(err)
	}
	planner, err := core.NewPlanner(engine)
	if err != nil {
		log.Fatal(err)
	}
	queries, err := collection.GenerateQueries(col, collection.QueryConfig{
		NumQueries: 30, MinTerms: 2, MaxTerms: 6, MaxDocFreqFrac: 0.02, Seed: 12,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Ground truth: the exhaustive ranking.
	truth := make([]quality.Qrels, len(queries))
	for i, q := range queries {
		res, err := engine.Search(q, core.Options{N: 10, Mode: core.ModeFull})
		if err != nil {
			log.Fatal(err)
		}
		truth[i] = quality.NewQrels(res.Top)
	}

	type strategy struct {
		name string
		run  func(collection.Query) (core.Result, error)
	}
	strategies := []strategy{
		{"full", func(q collection.Query) (core.Result, error) {
			return engine.Search(q, core.Options{N: 10, Mode: core.ModeFull})
		}},
		{"unsafe", func(q collection.Query) (core.Result, error) {
			return engine.Search(q, core.Options{N: 10, Mode: core.ModeUnsafe})
		}},
		{"safe(0.6)", func(q collection.Query) (core.Result, error) {
			return engine.Search(q, core.Options{N: 10, Mode: core.ModeSafe, SwitchThreshold: 0.6})
		}},
		{"safe(0.9)", func(q collection.Query) (core.Result, error) {
			return engine.Search(q, core.Options{N: 10, Mode: core.ModeSafe, SwitchThreshold: 0.9})
		}},
		{"planner", func(q collection.Query) (core.Result, error) {
			res, _, err := planner.Run(q, 10)
			return res, err
		}},
	}

	fmt.Printf("%-10s %10s %8s %8s %8s\n", "strategy", "decodes", "P@10", "MAP", "switched")
	for _, s := range strategies {
		eval, err := quality.NewEvaluator(10)
		if err != nil {
			log.Fatal(err)
		}
		var decodes int64
		switched := 0
		for i, q := range queries {
			fx.ResetCounters()
			res, err := s.run(q)
			if err != nil {
				log.Fatal(err)
			}
			decodes += fx.Small.Counters().PostingsDecoded + fx.Large.Counters().PostingsDecoded
			if res.Switched {
				switched++
			}
			eval.Add(truth[i], res.Top)
		}
		sum := eval.Summary()
		fmt.Printf("%-10s %10d %8.3f %8.3f %5d/%d\n",
			s.name, decodes, sum.MeanPrecision, sum.MAP, switched, len(queries))
	}
}
