// Quickstart: build a fragmented top-N retrieval engine over a synthetic
// collection and run one query under the paper's three strategies —
// full (exact), unsafe (small fragment only) and safe (early quality
// check, switching when needed).
package main

import (
	"fmt"
	"log"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/rank"
	"repro/internal/storage"
)

func main() {
	// 1. A synthetic Zipf collection standing in for TREC FT.
	col, err := collection.Generate(collection.Config{
		NumDocs: 2000, VocabSize: 30000, MeanDocLen: 200, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collection: %d docs, %d tokens, %d postings\n",
		len(col.Docs), col.TotalTokens, col.Lex.TotalPostings())

	// 2. Fragment the inverted file: rare terms into a small fragment
	//    holding ~10%% of the postings volume.
	pool, err := storage.NewPool(storage.NewDisk(), 1<<14)
	if err != nil {
		log.Fatal(err)
	}
	fx, err := index.BuildFragmented(col, pool, 0.10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fragments: small %d terms / %d postings (%.1f%% of volume), large %d terms / %d postings\n",
		fx.Small.NumTerms(), fx.Small.TotalPostings(), 100*fx.SmallFraction(),
		fx.Large.NumTerms(), fx.Large.TotalPostings())

	// 3. An engine with BM25 ranking.
	engine, err := core.NewEngine(fx, rank.NewBM25())
	if err != nil {
		log.Fatal(err)
	}

	// 4. One query, three strategies.
	queries, err := collection.GenerateQueries(col, collection.QueryConfig{
		NumQueries: 1, MinTerms: 4, MaxTerms: 4, MaxDocFreqFrac: 0.05, Seed: 9,
	})
	if err != nil {
		log.Fatal(err)
	}
	q := queries[0]
	terms := make([]string, len(q.Terms))
	for i, t := range q.Terms {
		terms[i] = fmt.Sprintf("%s(df=%d)", col.Lex.Name(t), col.Lex.Stats(t).DocFreq)
	}
	fmt.Printf("\nquery terms: %v\ncoverage (quality check): %.2f\n", terms, engine.Coverage(q))

	for _, mode := range []core.Mode{core.ModeFull, core.ModeUnsafe, core.ModeSafe} {
		fx.ResetCounters()
		res, err := engine.Search(q, core.Options{N: 5, Mode: mode})
		if err != nil {
			log.Fatal(err)
		}
		decodes := fx.Small.Counters().PostingsDecoded + fx.Large.Counters().PostingsDecoded
		fmt.Printf("\n%-6s: %d postings decoded, %d docs touched, switched=%v\n",
			mode, decodes, res.DocsTouched, res.Switched)
		for i, d := range res.Top {
			fmt.Printf("  %d. doc %-5d score %.4f\n", i+1, d.DocID, d.Score)
		}
	}
}
