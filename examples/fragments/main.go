// Fragments: a compact version of the paper's central experiment. Sweep
// the small-fragment volume fraction and print, for each point, the unsafe
// strategy's cost saving and quality loss against the unfragmented run —
// the speed/quality trade-off curve of Step 1.
package main

import (
	"fmt"
	"log"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/quality"
	"repro/internal/rank"
	"repro/internal/storage"
)

func main() {
	col, err := collection.Generate(collection.Config{
		NumDocs: 3000, VocabSize: 40000, MeanDocLen: 200, Seed: 41,
	})
	if err != nil {
		log.Fatal(err)
	}
	queries, err := collection.GenerateQueries(col, collection.QueryConfig{
		NumQueries: 30, MinTerms: 2, MaxTerms: 6, MaxDocFreqFrac: 0.02, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Ground truth and baseline cost from the unfragmented configuration.
	pool, err := storage.NewPool(storage.NewDisk(), 1<<15)
	if err != nil {
		log.Fatal(err)
	}
	fullFX, err := index.BuildFragmented(col, pool, 1.0)
	if err != nil {
		log.Fatal(err)
	}
	fullEngine, err := core.NewEngine(fullFX, rank.NewBM25())
	if err != nil {
		log.Fatal(err)
	}
	truth := make([]quality.Qrels, len(queries))
	var baseDecodes int64
	for i, q := range queries {
		fullFX.ResetCounters()
		res, err := fullEngine.Search(q, core.Options{N: 10, Mode: core.ModeUnsafe})
		if err != nil {
			log.Fatal(err)
		}
		baseDecodes += fullFX.Small.Counters().PostingsDecoded + fullFX.Large.Counters().PostingsDecoded
		truth[i] = quality.NewQrels(res.Top)
	}

	fmt.Printf("%-10s %10s %10s %8s %8s\n", "fragment%", "decodes", "speedup%", "P@10", "MAP")
	fmt.Printf("%-10s %10d %10s %8.3f %8.3f   (unfragmented baseline)\n", "100.0", baseDecodes, "-", 1.0, 1.0)
	for _, frac := range []float64{0.01, 0.02, 0.05, 0.10, 0.20} {
		p, err := storage.NewPool(storage.NewDisk(), 1<<15)
		if err != nil {
			log.Fatal(err)
		}
		fx, err := index.BuildFragmented(col, p, frac)
		if err != nil {
			log.Fatal(err)
		}
		engine, err := core.NewEngine(fx, rank.NewBM25())
		if err != nil {
			log.Fatal(err)
		}
		eval, err := quality.NewEvaluator(10)
		if err != nil {
			log.Fatal(err)
		}
		var decodes int64
		for i, q := range queries {
			fx.ResetCounters()
			res, err := engine.Search(q, core.Options{N: 10, Mode: core.ModeUnsafe})
			if err != nil {
				log.Fatal(err)
			}
			decodes += fx.Small.Counters().PostingsDecoded + fx.Large.Counters().PostingsDecoded
			eval.Add(truth[i], res.Top)
		}
		sum := eval.Summary()
		fmt.Printf("%-10.1f %10d %10.1f %8.3f %8.3f\n",
			100*fx.SmallFraction(), decodes,
			100*(1-float64(decodes)/float64(baseDecodes)),
			sum.MeanPrecision, sum.MAP)
	}
	fmt.Println("\npaper claim at the ~5% point: >=60% cost saving, >30% quality drop (unsafe).")
}
