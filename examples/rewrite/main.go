// Rewrite: the paper's Example 1 through the public optimizer API. Builds
// select(projecttobag(L), 2, 4) programmatically, optimizes it through the
// three layers, and shows the trace, the cost model's view, and the
// measured work of both plans at a size where the asymptotics are visible.
package main

import (
	"fmt"
	"log"

	"repro/internal/cost"
	"repro/internal/moa"
	"repro/internal/optimizer"
)

func main() {
	reg := moa.NewRegistry()
	opt := optimizer.New(reg)
	model := cost.NewMoaModel(reg)

	// The paper's literal example first.
	small := moa.SelectB(
		moa.ProjectToBag(moa.Literal(moa.NewIntList(1, 2, 3, 4, 4, 5))),
		moa.Int(2), moa.Int(4))
	optimized, traces, err := opt.Optimize(small)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Example 1 from the paper:")
	fmt.Printf("  input    : %s\n", small)
	fmt.Printf("  optimized: %s\n", optimized)
	fmt.Print(optimizer.Explain(traces))

	// The same plan at scale, where the O(n) vs O(log n + k) difference
	// dominates.
	const n = 200000
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = int64(i)
	}
	big := moa.SelectB(
		moa.ProjectToBag(moa.Literal(moa.NewIntList(xs...))),
		moa.Int(n/2), moa.Int(n/2+500))
	bigOpt, _, err := opt.Optimize(big)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAt n=%d elements:\n", n)
	for name, plan := range map[string]*moa.Expr{"input": big, "optimized": bigOpt} {
		est, err := model.Estimate(plan)
		if err != nil {
			log.Fatal(err)
		}
		ev := moa.NewEvaluator(reg)
		if _, err := ev.Eval(plan); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-9s: predicted work %.0f | measured visits=%d comparisons=%d\n",
			name, est.Work(), ev.Counters.ElementsVisited, ev.Counters.Comparisons)
	}
	fmt.Println("\nThe inter-object layer moved the select below the structure conversion;")
	fmt.Println("the intra-object layer then exploited the list's ordering with binary search.")
}
