// Progressive: the repository's extension of the paper's programme — a
// fragment *chain* processed rarest-terms-first with bound-based early
// termination. Epsilon sweeps the safe/unsafe spectrum continuously: 0 is
// provably exact, larger values stop earlier with a bounded relative
// score error. Compare with examples/fragments, where the choice is
// binary.
package main

import (
	"fmt"
	"log"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/quality"
	"repro/internal/rank"
	"repro/internal/storage"
)

func main() {
	col, err := collection.Generate(collection.Config{
		NumDocs: 3000, VocabSize: 40000, MeanDocLen: 200, Seed: 51,
	})
	if err != nil {
		log.Fatal(err)
	}
	pool, err := storage.NewPool(storage.NewDisk(), 1<<15)
	if err != nil {
		log.Fatal(err)
	}
	// Five fragments: 2%, 5%, 15%, 40% cumulative volume cuts, remainder.
	mx, err := index.BuildMulti(col, pool, []float64{0.02, 0.05, 0.15, 0.4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("fragment chain (rarest terms first):")
	for i, f := range mx.Fragments {
		fmt.Printf("  #%d: %6d terms, %8d postings\n", i, f.NumTerms(), f.TotalPostings())
	}
	prog, err := core.NewProgressive(mx, rank.NewBM25())
	if err != nil {
		log.Fatal(err)
	}
	queries, err := collection.GenerateQueries(col, collection.QueryConfig{
		NumQueries: 30, MinTerms: 3, MaxTerms: 6, MaxDocFreqFrac: 0.5, Seed: 52,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Exact baseline for quality.
	truth := make([]quality.Qrels, len(queries))
	for i, q := range queries {
		res, err := prog.Search(q, core.ProgressiveOptions{N: 10})
		if err != nil {
			log.Fatal(err)
		}
		truth[i] = quality.NewQrels(res.Top)
	}

	fmt.Printf("\n%-8s %10s %14s %12s %8s\n", "epsilon", "decodes", "avgFragsUsed", "earlyStops", "P@10")
	for _, eps := range []float64{0, 0.25, 0.5, 1.0, 2.0} {
		eval, err := quality.NewEvaluator(10)
		if err != nil {
			log.Fatal(err)
		}
		mx.ResetCounters()
		frags, early := 0, 0
		for i, q := range queries {
			res, err := prog.Search(q, core.ProgressiveOptions{N: 10, Epsilon: eps})
			if err != nil {
				log.Fatal(err)
			}
			frags += res.FragmentsUsed
			if res.FragmentsUsed < len(mx.Fragments) {
				early++
			}
			eval.Add(truth[i], res.Top)
		}
		fmt.Printf("%-8.2f %10d %14.2f %9d/%d %8.3f\n",
			eps, mx.Decoded(), float64(frags)/float64(len(queries)),
			early, len(queries), eval.Summary().MeanPrecision)
	}
	fmt.Println("\nepsilon 0 is provably exact; the stop rule compares the N-th score against")
	fmt.Println("the remaining fragments' maximal score mass (upper/lower bound administration).")
}
