package repro

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/moa"
	"repro/internal/optimizer"
	"repro/internal/quality"
	"repro/internal/rank"
	"repro/internal/storage"
	"repro/internal/vector"
)

// TestEndToEndPipeline drives the whole stack through the public API the
// way the examples do: generate → fragment → search in all modes → plan →
// fuse → verify cross-strategy consistency. It is the repository's
// cross-module smoke test.
func TestEndToEndPipeline(t *testing.T) {
	col, err := collection.Generate(collection.Config{
		NumDocs: 1200, VocabSize: 20000, MeanDocLen: 150, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := storage.NewPool(storage.NewDisk(), 1<<14)
	if err != nil {
		t.Fatal(err)
	}
	fx, err := index.BuildFragmented(col, pool, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := core.NewEngine(fx, rank.NewLM())
	if err != nil {
		t.Fatal(err)
	}
	planner, err := core.NewPlanner(engine)
	if err != nil {
		t.Fatal(err)
	}
	queries, err := collection.GenerateQueries(col, collection.QueryConfig{
		NumQueries: 15, MinTerms: 2, MaxTerms: 5, MaxDocFreqFrac: 0.02, Seed: 78,
	})
	if err != nil {
		t.Fatal(err)
	}

	evalSafe, err := quality.NewEvaluator(10)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		full, err := engine.Search(q, core.Options{N: 10, Mode: core.ModeFull})
		if err != nil {
			t.Fatal(err)
		}
		unsafe, err := engine.Search(q, core.Options{N: 10, Mode: core.ModeUnsafe})
		if err != nil {
			t.Fatal(err)
		}
		// Unsafe results must be a subset behaviour: every unsafe result
		// scores at most its full-mode counterpart position-wise score.
		for i := range unsafe.Top {
			if i < len(full.Top) && unsafe.Top[i].Score > full.Top[i].Score+1e-9 {
				t.Fatalf("query %d: unsafe rank %d scores above full", q.ID, i)
			}
		}
		safe, err := engine.Search(q, core.Options{N: 10, Mode: core.ModeSafe})
		if err != nil {
			t.Fatal(err)
		}
		evalSafe.Add(quality.NewQrels(full.Top), safe.Top)

		if _, _, err := planner.Run(q, 10); err != nil {
			t.Fatal(err)
		}
	}
	if s := evalSafe.Summary(); s.MeanPrecision < 0.5 {
		t.Errorf("safe strategy P@10 = %.3f over the workload; the pipeline lost too much quality", s.MeanPrecision)
	}

	// Fusion across the same corpus.
	data, err := vector.Generate(vector.Config{NumObjects: fx.Stats.NumDocs, Dim: 8, Seed: 79})
	if err != nil {
		t.Fatal(err)
	}
	fusion, err := core.NewFusion(engine, data)
	if err != nil {
		t.Fatal(err)
	}
	fq := core.FusionQuery{Text: queries[0], Points: []vector.Vector{data.Vecs[3]}}
	naive, err := fusion.Search(fq, 5, core.AlgNaive, core.ModeFull)
	if err != nil {
		t.Fatal(err)
	}
	ta, err := fusion.Search(fq, 5, core.AlgTA, core.ModeFull)
	if err != nil {
		t.Fatal(err)
	}
	for i := range naive.Top {
		if ta.Top[i].DocID != naive.Top[i].DocID {
			t.Fatal("fusion TA disagrees with exhaustive evaluation")
		}
	}
}

// TestExample1PublicAPI reproduces the paper's Example 1 through the
// parser, optimizer and evaluator as an external user would.
func TestExample1PublicAPI(t *testing.T) {
	reg := moa.NewRegistry()
	expr, err := moa.Parse("select(projecttobag([1, 2, 3, 4, 4, 5]), 2, 4)", reg)
	if err != nil {
		t.Fatal(err)
	}
	opt := optimizer.New(reg)
	optimized, traces, err := opt.Optimize(expr)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) < 2 {
		t.Fatalf("expected inter-object + intra-object rewrites, got %d", len(traces))
	}
	ev := moa.NewEvaluator(reg)
	got, err := ev.Eval(optimized)
	if err != nil {
		t.Fatal(err)
	}
	if !moa.Equal(got, moa.NewIntBag(2, 3, 4, 4)) {
		t.Fatalf("Example 1 result = %s, want {2, 3, 4, 4}", got)
	}
}

// TestHarnessSmoke runs the two headline experiments at small scale from
// the root package, mirroring what cmd/topnbench does.
func TestHarnessSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke test skipped in -short mode")
	}
	for _, run := range []func(bench.Scale, uint64) (*bench.Table, error){
		bench.RunF1, bench.RunE5,
	} {
		tbl, err := run(bench.ScaleSmall, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(tbl.Rows) == 0 {
			t.Fatal("empty harness table")
		}
	}
}
