// Package repro's root benchmark suite: one benchmark per experiment
// table/figure (DESIGN.md §4), measuring the operation each experiment
// times — not the harness around it. Run with:
//
//	go test -bench=. -benchmem
//
// The full tables (with quality columns and counter-based costs) come from
// cmd/topnbench; these benchmarks give the wall-clock view and expose the
// same comparisons to Go's benchmarking tooling.
package repro

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/index"
	"repro/internal/moa"
	"repro/internal/optimizer"
	"repro/internal/parallel"
	"repro/internal/probtopn"
	"repro/internal/rank"
	"repro/internal/stopafter"
	"repro/internal/storage"
	"repro/internal/topk"
	"repro/internal/vector"
	"repro/internal/xrand"
	"repro/internal/zipf"
)

// fixtures are built once and shared across benchmarks.
type fixtures struct {
	col     *collection.Collection
	queries []collection.Query
	engine  *core.Engine
	fx      *index.Fragmented
	planner *core.Planner
	fusion  *core.Fusion
	points  []vector.Vector
}

var (
	fixOnce sync.Once
	fixVal  *fixtures
	fixErr  error
)

func getFixtures(b *testing.B) *fixtures {
	b.Helper()
	fixOnce.Do(func() {
		col, err := collection.Generate(collection.Config{
			NumDocs: 4000, VocabSize: 50000, MeanDocLen: 200, Seed: 101,
		})
		if err != nil {
			fixErr = err
			return
		}
		queries, err := collection.GenerateQueries(col, collection.QueryConfig{
			NumQueries: 20, MinTerms: 2, MaxTerms: 6, MaxDocFreqFrac: 0.02, Seed: 102,
		})
		if err != nil {
			fixErr = err
			return
		}
		pool, err := storage.NewPool(storage.NewDisk(), 1<<15)
		if err != nil {
			fixErr = err
			return
		}
		fx, err := index.BuildFragmented(col, pool, 0.08)
		if err != nil {
			fixErr = err
			return
		}
		engine, err := core.NewEngine(fx, rank.NewBM25())
		if err != nil {
			fixErr = err
			return
		}
		planner, err := core.NewPlanner(engine)
		if err != nil {
			fixErr = err
			return
		}
		data, err := vector.Generate(vector.Config{
			NumObjects: fx.Stats.NumDocs, Dim: 12, NumClusters: 10, Seed: 103,
		})
		if err != nil {
			fixErr = err
			return
		}
		fusion, err := core.NewFusion(engine, data)
		if err != nil {
			fixErr = err
			return
		}
		fixVal = &fixtures{
			col: col, queries: queries, engine: engine, fx: fx,
			planner: planner, fusion: fusion,
			points: []vector.Vector{data.Vecs[7], data.Vecs[1009]},
		}
	})
	if fixErr != nil {
		b.Fatal(fixErr)
	}
	return fixVal
}

// BenchmarkF1ZipfShape times the statistical substrate of Figure F1:
// sampling the Zipf term distribution and fitting the exponent back.
func BenchmarkF1ZipfShape(b *testing.B) {
	d := zipf.MustNew(100000, 1.6, 2)
	rng := xrand.New(1)
	b.Run("sample", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d.Sample(rng)
		}
	})
	freqs := make([]int, 20000)
	for i := range freqs {
		freqs[i] = 1 + int(100000/float64(i+1))
	}
	b.Run("fit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := zipf.FitExponent(freqs); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// searchAll runs every workload query under the given options.
func searchAll(b *testing.B, f *fixtures, opts core.Options) {
	b.Helper()
	for _, q := range f.queries {
		if _, err := f.engine.Search(q, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE1FragmentSpeedup is Table E1+E2's wall-clock view: full
// processing vs unsafe small-fragment-only processing.
func BenchmarkE1FragmentSpeedup(b *testing.B) {
	f := getFixtures(b)
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			searchAll(b, f, core.Options{N: 10, Mode: core.ModeFull})
		}
	})
	b.Run("unsafe", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			searchAll(b, f, core.Options{N: 10, Mode: core.ModeUnsafe})
		}
	})
}

// BenchmarkE3SafeSwitch is Table E3's wall-clock view: the safe strategy
// at increasing switch thresholds.
func BenchmarkE3SafeSwitch(b *testing.B) {
	f := getFixtures(b)
	for _, th := range []float64{0.2, 0.8} {
		b.Run(bench.Table{}.ID+"th"+trim(th), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				searchAll(b, f, core.Options{N: 10, Mode: core.ModeSafe, SwitchThreshold: th})
			}
		})
	}
}

func trim(f float64) string {
	if f == 0.2 {
		return "0.2"
	}
	return "0.8"
}

// BenchmarkE4SparseIndex is Table E4's wall-clock view: streaming vs
// probing the large fragment when the safe plan switches.
func BenchmarkE4SparseIndex(b *testing.B) {
	f := getFixtures(b)
	b.Run("stream", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			searchAll(b, f, core.Options{N: 10, Mode: core.ModeSafe, SwitchThreshold: 2})
		}
	})
	b.Run("probe", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			searchAll(b, f, core.Options{N: 10, Mode: core.ModeSafe, SwitchThreshold: 2, ProbeLarge: true})
		}
	})
}

// BenchmarkE5InterObject is Table E5's wall-clock view: Example 1 naive vs
// fully optimized at 100k elements.
func BenchmarkE5InterObject(b *testing.B) {
	reg := moa.NewRegistry()
	opt := optimizer.New(reg)
	xs := make([]int64, 100000)
	for i := range xs {
		xs[i] = int64(i)
	}
	naive := moa.SelectB(moa.ProjectToBag(moa.Literal(moa.NewIntList(xs...))),
		moa.Int(50000), moa.Int(51000))
	optimized, _, err := opt.Optimize(naive)
	if err != nil {
		b.Fatal(err)
	}
	for name, plan := range map[string]*moa.Expr{"naive": naive, "optimized": optimized} {
		b.Run(name, func(b *testing.B) {
			ev := moa.NewEvaluator(reg)
			ev.CheckPhysical = false
			for i := 0; i < b.N; i++ {
				if _, err := ev.Eval(plan); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE6Fagin is Table E6's wall-clock view over clustered features.
func BenchmarkE6Fagin(b *testing.B) {
	data, err := vector.Generate(vector.Config{
		NumObjects: 20000, Dim: 12, NumClusters: 15, Seed: 5,
	})
	if err != nil {
		b.Fatal(err)
	}
	src1, err := data.Source(data.Vecs[3])
	if err != nil {
		b.Fatal(err)
	}
	src2, err := data.Source(data.Vecs[999])
	if err != nil {
		b.Fatal(err)
	}
	sources := []topk.Source{src1, src2}
	algs := map[string]func([]topk.Source, topk.Agg, int) (topk.Result, error){
		"naive": topk.Naive, "fa": topk.FA, "ta": topk.TA, "nra": topk.NRA,
	}
	for _, name := range []string{"naive", "fa", "ta", "nra"} {
		alg := algs[name]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := alg(sources, topk.SumAgg(), 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE7StopAfter is Table E7's wall-clock view at selectivity 0.5.
func BenchmarkE7StopAfter(b *testing.B) {
	rng := xrand.New(7)
	table := make([]exec.Row, 100000)
	for i := range table {
		table[i] = exec.Row{ID: uint32(i), Score: rng.Float64(), Attr: rng.Float64()}
	}
	pred := func(r exec.Row) bool { return r.Attr < 0.5 }
	b.Run("conservative", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := stopafter.Conservative(table, pred, 10); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("aggressive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := stopafter.Aggressive(table, pred, 10, 0.5); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE8ProbTopN is Table E8's wall-clock view.
func BenchmarkE8ProbTopN(b *testing.B) {
	rng := xrand.New(9)
	table := make([]exec.Row, 100000)
	scores := make([]float64, len(table))
	for i := range table {
		v := rng.ExpFloat64()
		table[i] = exec.Row{ID: uint32(i), Score: v}
		scores[i] = v
	}
	hist, err := cost.BuildHistogram(scores, 64)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("reference", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := probtopn.Reference(table, 50); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cutoff", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := probtopn.TopN(table, 50, hist, 2); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE9CostModel times the planner's per-query plan pricing — the
// overhead Step 3 adds to every query.
func BenchmarkE9CostModel(b *testing.B) {
	f := getFixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.planner.Plan(f.queries[i%len(f.queries)])
	}
}

// BenchmarkE10Fusion is Table E10's wall-clock view: exhaustive vs TA
// evaluation of an integrated text+feature query.
func BenchmarkE10Fusion(b *testing.B) {
	f := getFixtures(b)
	fq := core.FusionQuery{
		Text:    f.queries[0],
		Points:  []vector.Vector{f.points[0]},
		Weights: []float64{1, 1},
	}
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := f.fusion.Search(fq, 10, core.AlgNaive, core.ModeFull); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ta", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := f.fusion.Search(fq, 10, core.AlgTA, core.ModeFull); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ta-unsafe-text", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := f.fusion.Search(fq, 10, core.AlgTA, core.ModeUnsafe); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE11Progressive is Table E11's wall-clock view: exact vs relaxed
// progressive fragment-chain processing.
func BenchmarkE11Progressive(b *testing.B) {
	f := getFixtures(b)
	pool, err := storage.NewPool(storage.NewDisk(), 1<<15)
	if err != nil {
		b.Fatal(err)
	}
	mx, err := index.BuildMulti(f.col, pool, []float64{0.02, 0.05, 0.15, 0.4})
	if err != nil {
		b.Fatal(err)
	}
	prog, err := core.NewProgressive(mx, rank.NewBM25())
	if err != nil {
		b.Fatal(err)
	}
	for name, eps := range map[string]float64{"exact": 0, "eps0.5": 0.5} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, q := range f.queries {
					if _, err := prog.Search(q, core.ProgressiveOptions{N: 10, Epsilon: eps}); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkE12MaxScore is Table E12's wall-clock view: exhaustive full
// evaluation vs exact MaxScore pruning on the unfragmented index.
func BenchmarkE12MaxScore(b *testing.B) {
	f := getFixtures(b)
	pool, err := storage.NewPool(storage.NewDisk(), 1<<15)
	if err != nil {
		b.Fatal(err)
	}
	idx, err := index.Build(f.col, pool)
	if err != nil {
		b.Fatal(err)
	}
	ms, err := core.NewMaxScore(idx, rank.NewBM25())
	if err != nil {
		b.Fatal(err)
	}
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			searchAll(b, f, core.Options{N: 10, Mode: core.ModeFull})
		}
	})
	b.Run("maxscore", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, q := range f.queries {
				if _, err := ms.Search(q, 10); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkParallelSearch is the wall-clock view of the sharded
// concurrent layer (experiment PAR): the fixture workload batched
// through parallel.Searcher at several shard/worker configurations,
// against the sequential full-evaluation baseline above it.
func BenchmarkParallelSearch(b *testing.B) {
	f := getFixtures(b)
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			searchAll(b, f, core.Options{N: 10, Mode: core.ModeFull})
		}
	})
	for _, shards := range []int{1, 4} {
		pool, err := storage.NewPool(storage.NewDisk(), 1<<15)
		if err != nil {
			b.Fatal(err)
		}
		s, err := parallel.NewSearcher(f.col, pool, rank.NewBM25(), parallel.Config{Shards: shards, Workers: 4})
		if err != nil {
			b.Fatal(err)
		}
		workerSweep := []int{1}
		if shards > 1 {
			workerSweep = append(workerSweep, 4)
		}
		for _, workers := range workerSweep {
			b.Run(fmt.Sprintf("shards%d_workers%d", shards, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := s.SearchBatch(f.queries, parallel.Options{N: 10, Workers: workers}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkDiskPagedSearch is the wall-clock view of the DISK
// experiment's central comparison: block-max MaxScore over the in-memory
// index vs over a persisted segment served through a buffer pool smaller
// than the index. The paged side pays block faults and pool misses; the
// decode plan is identical by construction.
func BenchmarkDiskPagedSearch(b *testing.B) {
	f := getFixtures(b)
	pool, err := storage.NewPool(storage.NewDisk(), 1<<15)
	if err != nil {
		b.Fatal(err)
	}
	idx, err := index.Build(f.col, pool)
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	if err := idx.Persist(dir); err != nil {
		b.Fatal(err)
	}
	segPool, fd, err := index.OpenPool(dir, 64)
	if err != nil {
		b.Fatal(err)
	}
	defer fd.Close()
	opened, err := index.Open(dir, segPool)
	if err != nil {
		b.Fatal(err)
	}
	for name, ix := range map[string]*index.Index{"memory": idx, "paged": opened} {
		ms, err := core.NewMaxScore(ix, rank.NewBM25())
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, q := range f.queries {
					if _, err := ms.Search(q, 10); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkSearchParallel is the allocation-budget view of the hot
// loop: many goroutines hammering one warmed MaxScore engine with the
// Into variant and a per-goroutine reused result buffer. Run with
// -benchmem; steady state is zero allocs/op (the gate
// internal/core's alloc tests and the HOT experiment enforce).
func BenchmarkSearchParallel(b *testing.B) {
	f := getFixtures(b)
	pool, err := storage.NewPool(storage.NewDisk(), 1<<15)
	if err != nil {
		b.Fatal(err)
	}
	idx, err := index.Build(f.col, pool)
	if err != nil {
		b.Fatal(err)
	}
	ms, err := core.NewMaxScore(idx, rank.NewBM25())
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	warm := make([]rank.DocScore, 0, 16)
	for _, q := range f.queries {
		if warm, err = ms.SearchContextInto(ctx, q, 10, warm[:0]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		dst := make([]rank.DocScore, 0, 16)
		i := 0
		for pb.Next() {
			q := f.queries[i%len(f.queries)]
			i++
			var err error
			if dst, err = ms.SearchContextInto(ctx, q, 10, dst[:0]); err != nil {
				b.Fatal(err)
			}
		}
	})
}
